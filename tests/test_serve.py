"""Serving-layer suite (repro.serve.server).

The contract under test: :class:`~repro.serve.ForestServer` answers are
*bit-identical* to direct :class:`~repro.frt.forest.FRTForest` queries —
through the micro-batcher, through pair dedup, and through the LRU cache
— while the counters faithfully record what was batched, coalesced, hit,
and missed.
"""

import numpy as np
import pytest

from repro.api import EmbeddingConfig, Pipeline, PipelineConfig
from repro.apps.batched import hst_kmedian_dp_forest
from repro.graph import generators as gen
from repro.io import save_forest
from repro.serve import PAIR_KINDS, ForestServer, load_server, unique_pairs


@pytest.fixture(scope="module")
def forest():
    g = gen.random_graph(48, rng=3, wmin=1.0, wmax=8.0)
    cfg = PipelineConfig(embedding=EmbeddingConfig(method="direct"), seed=11)
    return Pipeline(g, cfg).sample_ensemble(6, seed=7, mode="batched").forest


def _pairs(n, p, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, p), rng.integers(0, n, p)


# -- pair dedup ----------------------------------------------------------------


def test_unique_pairs_dedups_and_inverts():
    us = np.array([3, 1, 3, 0, 1])
    vs = np.array([4, 2, 4, 0, 2])
    keys, uu, vv = unique_pairs(us, vs, 10)
    assert keys.tolist() == [0, 12, 34]
    assert uu.tolist() == [0, 1, 3]
    assert vv.tolist() == [0, 2, 4]
    # searchsorted on the sorted keys maps any pair back to its column
    assert np.searchsorted(keys, us * 10 + vs).tolist() == [2, 1, 2, 0, 1]


# -- query parity --------------------------------------------------------------


@pytest.mark.parametrize("kind", PAIR_KINDS)
def test_each_kind_matches_direct_forest_query(forest, kind):
    us, vs = _pairs(forest.n, 30)
    server = ForestServer(forest)
    got = getattr(server, kind)(us, vs)
    want = getattr(forest, kind)(us, vs)
    assert got.shape == want.shape
    assert np.array_equal(got, want)


def test_batched_submissions_resolve_in_one_flush(forest):
    """Many small requests -> one flush -> one coalesced forest call."""
    server = ForestServer(forest)
    us, vs = _pairs(forest.n, 40, seed=1)
    reqs = [
        server.submit("distances", us[i : i + 8], vs[i : i + 8])
        for i in range(0, 40, 8)
    ]
    assert not any(r.done for r in reqs)
    assert server.flush() == 5
    for i, req in enumerate(reqs):
        sl = slice(i * 8, (i + 1) * 8)
        assert np.array_equal(req.result(), forest.distances(us[sl], vs[sl]))
    stats = server.stats()
    assert stats["batches"] == 1
    assert stats["requests"] == 5
    assert stats["batched_pairs"] == 40
    assert stats["mean_batch_size"] == 40.0


def test_mixed_kinds_share_one_coalesced_batch(forest):
    server = ForestServer(forest)
    us, vs = _pairs(forest.n, 12, seed=2)
    r1 = server.submit("distances", us, vs)
    r2 = server.submit("distance_upper_bounds", us, vs)
    r3 = server.submit("median_distances", us, vs)
    server.flush()
    assert np.array_equal(r1.result(), forest.distances(us, vs))
    assert np.array_equal(r2.result(), forest.distance_upper_bounds(us, vs))
    assert np.array_equal(r3.result(), forest.median_distances(us, vs))
    stats = server.stats()
    assert stats["batches"] == 1
    # the three kinds' identical pair sets coalesce to one unique set
    assert stats["coalesced_pairs"] == np.unique(us * forest.n + vs).size


def test_duplicate_pairs_coalesce_across_requests(forest):
    server = ForestServer(forest)
    us, vs = _pairs(forest.n, 10, seed=3)
    for _ in range(4):
        server.submit("distances", us, vs)
    server.flush()
    stats = server.stats()
    assert stats["batched_pairs"] == 40
    assert stats["coalesced_pairs"] == np.unique(us * forest.n + vs).size


def test_result_triggers_lazy_flush(forest):
    server = ForestServer(forest)
    us, vs = _pairs(forest.n, 5, seed=4)
    req = server.submit("median_distances", us, vs)
    assert not req.done
    assert np.array_equal(req.result(), forest.median_distances(us, vs))
    assert req.done


def test_auto_flush_at_max_pending(forest):
    server = ForestServer(forest, max_pending=16)
    us, vs = _pairs(forest.n, 10, seed=5)
    r1 = server.submit("distances", us, vs)
    assert not r1.done  # 10 pairs < 16: still parked
    r2 = server.submit("distances", us, vs)
    assert r1.done and r2.done  # 20 pairs >= 16: flushed
    assert server.stats()["batches"] == 1


def test_empty_request_resolves_immediately(forest):
    server = ForestServer(forest)
    req = server.submit("distances", [], [])
    assert req.done
    assert req.result().shape == (forest.size, 0)
    assert server.submit("median_distances", [], []).result().shape == (0,)


# -- cache behavior ------------------------------------------------------------


def test_repeat_queries_hit_the_cache(forest):
    server = ForestServer(forest)
    us, vs = _pairs(forest.n, 20, seed=6)
    first = server.distances(us, vs)
    stats = server.stats()
    assert stats["cache_hits"] == 0
    assert stats["cache_misses"] == 20
    second = server.distances(us, vs)
    assert np.array_equal(first, second)
    assert np.array_equal(second, forest.distances(us, vs))
    stats = server.stats()
    assert stats["cache_hits"] == 20
    assert stats["cache_hit_rate"] == pytest.approx(0.5)
    # a cached batch still counts as a batch, but coalesces zero pairs
    assert stats["coalesced_pairs"] == np.unique(us * forest.n + vs).size


def test_kinds_cache_independently(forest):
    server = ForestServer(forest)
    us, vs = _pairs(forest.n, 8, seed=7)
    server.distances(us, vs)
    server.distance_upper_bounds(us, vs)  # same pairs, different kind
    assert server.stats()["cache_hits"] == 0


def test_partial_hits_mix_with_misses(forest):
    server = ForestServer(forest)
    us, vs = _pairs(forest.n, 10, seed=8)
    server.distances(us[:5], vs[:5])
    out = server.distances(us, vs)
    assert np.array_equal(out, forest.distances(us, vs))
    stats = server.stats()
    assert stats["cache_hits"] >= 5


def test_lru_evicts_oldest_entries(forest):
    server = ForestServer(forest, cache_size=4)
    us, vs = _pairs(forest.n, 8, seed=9)
    keys = np.unique(us * forest.n + vs)
    server.distances(us, vs)
    assert server.stats()["cache_entries"] <= 4
    # the last four unique pairs survive; re-querying everything re-misses
    # the evicted ones but still answers exactly
    out = server.distances(us, vs)
    assert np.array_equal(out, forest.distances(us, vs))
    assert server.stats()["cache_misses"] > keys.size


def test_cache_disabled_with_size_zero(forest):
    server = ForestServer(forest, cache_size=0)
    us, vs = _pairs(forest.n, 6, seed=10)
    server.distances(us, vs)
    server.distances(us, vs)
    stats = server.stats()
    assert stats["cache_hits"] == 0
    assert stats["cache_entries"] == 0


def test_cache_keys_include_fingerprint(forest):
    server = ForestServer(forest, fingerprint="abc123")
    us, vs = _pairs(forest.n, 4, seed=11)
    server.distances(us, vs)
    for key in server._cache["distances"]:
        assert key[0] == "abc123"
        assert key[1] == "distances"


# -- k-median ------------------------------------------------------------------


def test_kmedian_matches_batched_dp_and_caches(forest):
    server = ForestServer(forest)
    rng = np.random.default_rng(0)
    weights = rng.random(forest.n)
    costs, facilities = server.kmedian(weights, 3)
    want_costs, want_fac = hst_kmedian_dp_forest(forest, weights, 3)
    assert np.array_equal(costs, want_costs)
    for got, want in zip(facilities, want_fac):
        assert np.array_equal(got, want)
    costs2, _ = server.kmedian(weights, 3)
    assert np.array_equal(costs2, want_costs)
    stats = server.stats()
    assert stats["cache_hits"] == 1
    # different k is a different request, not a cache hit
    server.kmedian(weights, 2)
    assert server.stats()["cache_hits"] == 1


def test_kmedian_allowed_mask_distinguishes_cache_entries(forest):
    server = ForestServer(forest)
    weights = np.ones(forest.n)
    allowed = np.zeros(forest.n, dtype=bool)
    allowed[: forest.n // 2] = True
    want, _ = hst_kmedian_dp_forest(forest, weights, 2, allowed=allowed)
    server.kmedian(weights, 2)
    got, _ = server.kmedian(weights, 2, allowed=allowed)
    assert server.stats()["cache_hits"] == 0  # the mask is part of the key
    assert np.array_equal(got, want)


# -- stats + validation --------------------------------------------------------


def test_stats_reports_latency_percentiles(forest):
    server = ForestServer(forest)
    us, vs = _pairs(forest.n, 4, seed=12)
    for _ in range(5):
        server.distances(us, vs)
    stats = server.stats()
    assert stats["latency_p50"] > 0.0
    assert stats["latency_p50"] <= stats["latency_p90"] <= stats["latency_p99"]
    server.reset_stats()
    fresh = server.stats()
    assert fresh["requests"] == 0
    assert fresh["latency_p99"] == 0.0
    # the cache survives a stats reset
    server.distances(us, vs)
    assert server.stats()["cache_hits"] > 0


def test_rejects_bad_requests(forest):
    server = ForestServer(forest)
    with pytest.raises(ValueError, match="unknown query kind"):
        server.submit("nope", [0], [1])
    with pytest.raises(ValueError, match="equal-length"):
        server.submit("distances", [0, 1], [2])
    with pytest.raises(ValueError, match="vertex ids"):
        server.submit("distances", [0], [forest.n])
    with pytest.raises(TypeError, match="FRTForest"):
        ForestServer(object())
    with pytest.raises(ValueError, match="cache_size"):
        ForestServer(forest, cache_size=-1)
    with pytest.raises(ValueError, match="max_pending"):
        ForestServer(forest, max_pending=0)


# -- end to end from an artifact ----------------------------------------------


def test_load_server_serves_from_artifact(tmp_path, forest):
    path = tmp_path / "forest.rpz"
    save_forest(path, forest, provenance={"fingerprint": "deadbeef"})
    server = load_server(path)
    assert server.fingerprint == "deadbeef"
    assert isinstance(server.forest.level_ids, np.memmap)  # mmap default
    us, vs = _pairs(forest.n, 16, seed=13)
    assert np.array_equal(server.distances(us, vs), forest.distances(us, vs))
    assert np.array_equal(
        server.median_distances(us, vs), forest.median_distances(us, vs)
    )


def test_facade_end_to_end_offline_build_online_serve(tmp_path):
    """The full split: save_artifacts -> load_server -> parity."""
    g = gen.random_graph(32, rng=4)
    pipe = Pipeline(
        g, PipelineConfig(embedding=EmbeddingConfig(method="direct"), seed=1)
    )
    path = tmp_path / "ens.rpz"
    meta = pipe.save_artifacts(path, 4, seed=2)
    server = load_server(path)
    assert server.fingerprint == meta["fingerprint"]
    reference = Pipeline.from_artifacts(path)
    us, vs = _pairs(32, 10, seed=14)
    assert np.array_equal(
        server.distance_upper_bounds(us, vs),
        reference.ensemble().distance_upper_bounds(us, vs),
    )


# -- REPRO_FREEZE sanitizer ----------------------------------------------------


def test_freeze_mode_makes_cached_columns_read_only(forest, monkeypatch):
    """Under REPRO_FREEZE=1 every cached hit column refuses writes while
    public answers stay writable copies."""
    monkeypatch.setenv("REPRO_FREEZE", "1")
    server = ForestServer(forest)
    us, vs = _pairs(forest.n, 12, seed=5)
    answer = server.distances(us, vs)
    answer[0, 0] = -1.0  # the caller's copy is theirs to mutate
    cached = next(iter(server._cache["distances"].values()))
    assert not cached.flags.writeable
    with pytest.raises(ValueError):
        cached[0] = -1.0
    # The poisoning the sanitizer guards against cannot happen: a repeat
    # query (cache hits) still matches the direct forest answer.
    assert np.array_equal(
        server.distances(us, vs), forest.distances(us, vs)
    )


def test_freeze_mode_makes_kmedian_cache_tuples_read_only(forest, monkeypatch):
    monkeypatch.setenv("REPRO_FREEZE", "1")
    server = ForestServer(forest)
    weights = np.ones(forest.n)
    costs, facilities = server.kmedian(weights, 2)
    costs[0] = -1.0  # returned arrays are writable copies
    facilities[0][:] = 0
    cached_costs, cached_facs = next(iter(server._cache["kmedian"].values()))
    assert not cached_costs.flags.writeable
    assert all(not f.flags.writeable for f in cached_facs)
    with pytest.raises(ValueError):
        cached_costs[0] = 0.0
    # The hit path still hands out writable copies of the frozen truth.
    costs2, facilities2 = server.kmedian(weights, 2)
    assert np.array_equal(costs2, cached_costs)
    assert costs2.flags.writeable
    assert all(f.flags.writeable for f in facilities2)
