"""Tests for spanners and approximate metrics (Section 6)."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.shortest_paths import dijkstra_distances
from repro.hopsets.verify import count_triangle_violations
from repro.metric import (
    approximate_metric,
    approximate_metric_spanner,
    baswana_sen_spanner,
)


class TestBaswanaSenSpanner:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_bound_deterministic(self, k):
        # The 2k-1 stretch holds with certainty; exhaustive check.
        for seed in range(4):
            g = gen.random_graph(30, 120, rng=seed)
            sp = baswana_sen_spanner(g, k, rng=seed + 100)
            DG = dijkstra_distances(g)
            DS = dijkstra_distances(sp)
            off = ~np.eye(g.n, dtype=bool)
            assert np.all(DS[off] >= DG[off] - 1e-9)  # subgraph: no shortcuts
            assert np.all(DS[off] <= (2 * k - 1) * DG[off] + 1e-9)

    def test_k1_returns_graph_itself(self):
        g = gen.random_graph(12, 30, rng=0)
        sp = baswana_sen_spanner(g, 1, rng=1)
        assert sp == g

    def test_spanner_is_subgraph(self):
        g = gen.random_graph(25, 100, rng=2)
        sp = baswana_sen_spanner(g, 3, rng=3)
        A = g.adjacency()
        for (u, v), w in zip(sp.edges, sp.weights):
            assert A[u, v] == pytest.approx(w)

    def test_sparsification_on_dense_graph(self):
        n = 64
        g = gen.complete_graph(n, rng=4)
        sizes = [baswana_sen_spanner(g, 3, rng=s).m for s in range(5)]
        # k=3: expected O(k n^{1+1/3}) ≈ 3·n^{4/3} ≈ 770 ≪ 2016 = m.
        assert np.mean(sizes) < g.m / 2

    def test_spanner_connected(self):
        for seed in range(3):
            g = gen.random_graph(30, 90, rng=seed)
            sp = baswana_sen_spanner(g, 2, rng=seed)
            assert sp.is_connected()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            baswana_sen_spanner(gen.cycle(5), 0)

    def test_deterministic_given_seed(self):
        g = gen.random_graph(20, 60, rng=5)
        a = baswana_sen_spanner(g, 2, rng=7)
        b = baswana_sen_spanner(g, 2, rng=7)
        assert a == b


class TestApproximateMetric:
    def test_is_metric_and_approximates(self):
        g = gen.cycle(24, wmin=1, wmax=3, rng=0)
        res = approximate_metric(g, eps=0.25, d0=4, rng=1)
        D = dijkstra_distances(g)
        off = ~np.eye(g.n, dtype=bool)
        # dominance and claimed stretch
        assert np.all(res.matrix[off] >= D[off] - 1e-9)
        assert np.all(res.matrix[off] <= res.stretch_bound * D[off] + 1e-9)
        # a true metric: zero triangle violations (unlike raw d-hop dists)
        assert count_triangle_violations(res.matrix) == 0

    def test_small_eps_near_exact(self):
        g = gen.grid(4, 5, rng=2)
        res = approximate_metric(g, eps=0.01, d0=3, rng=3)
        D = dijkstra_distances(g)
        off = ~np.eye(g.n, dtype=bool)
        assert np.all(res.matrix[off] <= 1.25 * D[off])

    def test_eps_zero_exact(self):
        g = gen.cycle(16, rng=4)
        res = approximate_metric(g, eps=0.0, d0=3, rng=5)
        assert res.matrix == pytest.approx(dijkstra_distances(g))
        assert res.iterations == 1

    def test_iterations_polylog(self):
        g = gen.cycle(48, rng=6)
        res = approximate_metric(g, eps=0.25, d0=5, rng=7)
        assert res.iterations <= int(np.log2(g.n) ** 2)

    def test_query_interface(self):
        g = gen.path_graph(6)
        res = approximate_metric(g, eps=0.0, d0=2, rng=8)
        assert res.query(0, 5) == pytest.approx(5.0)
        assert res.n == 6

    def test_symmetry(self):
        g = gen.random_graph(20, 50, rng=9)
        res = approximate_metric(g, eps=0.25, d0=4, rng=10)
        assert np.allclose(res.matrix, res.matrix.T)

    def test_disconnected_rejected(self):
        from repro.graph.core import Graph

        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            approximate_metric(g)


class TestApproximateMetricSpanner:
    def test_combined_guarantee(self):
        g = gen.complete_graph(32, rng=0)
        k = 2
        res = approximate_metric_spanner(g, k, eps=0.1, d0=4, rng=1)
        D = dijkstra_distances(g)
        off = ~np.eye(g.n, dtype=bool)
        assert np.all(res.matrix[off] >= D[off] - 1e-9)
        assert np.all(res.matrix[off] <= res.stretch_bound * D[off] + 1e-9)

    def test_meta_records_sparsification(self):
        g = gen.complete_graph(40, rng=2)
        res = approximate_metric_spanner(g, 3, eps=0.1, d0=4, rng=3)
        assert res.meta["spanner_k"] == 3
        assert res.meta["spanner_edges"] < res.meta["original_edges"]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            approximate_metric_spanner(gen.cycle(6), 0)
