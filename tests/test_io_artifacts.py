"""Artifact round-trip suite (repro.io.artifacts).

The contract under test: ``save_*`` → ``load_*`` is *bit-identical* —
every stacked array, every per-tree view, every query output — in both
in-memory and memmap mode; memmap loads map the CSR payload instead of
copying it; and anything that is not a valid current-schema artifact is
rejected with an :class:`~repro.io.artifacts.ArtifactError` that says
why.
"""

import json
import tracemalloc
import zipfile

import numpy as np
import pytest

from repro.api import EmbeddingConfig, Pipeline, PipelineConfig
from repro.graph import generators as gen
from repro.graph.core import Graph
from repro.io import (
    SCHEMA_VERSION,
    ArtifactError,
    content_fingerprint,
    load_forest,
    load_metric,
    load_result,
    read_artifact_meta,
    save_forest,
    save_metric,
    save_result,
)

FOREST_ARRAYS = (
    "betas",
    "depths",
    "radii",
    "edge_weights",
    "cum_weights",
    "level_ids",
    "node_offsets",
    "parent",
    "node_level",
    "node_leading",
)


def _pipeline(n=40, *, seed=11, graph_rng=3, wmax=8.0):
    g = gen.random_graph(n, rng=graph_rng, wmin=1.0, wmax=wmax)
    cfg = PipelineConfig(embedding=EmbeddingConfig(method="direct"), seed=seed)
    return Pipeline(g, cfg)


def _result(n=40, k=5, *, seed=11, batch_seed=7, wmax=8.0):
    return _pipeline(n, seed=seed, wmax=wmax).sample_ensemble(
        k, seed=batch_seed, mode="batched"
    )


def _assert_forest_identical(got, want):
    assert got.n == want.n
    assert got.size == want.size
    assert got.k_max == want.k_max
    assert got.scale == want.scale
    for name in FOREST_ARRAYS:
        a, b = getattr(got, name), getattr(want, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name


def _query_pairs(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, 25), rng.integers(0, n, 25)


# -- forest round trips --------------------------------------------------------


@pytest.mark.parametrize("mmap", [False, True], ids=["inmem", "mmap"])
@pytest.mark.parametrize("k", [1, 5], ids=["k1", "k5"])
def test_forest_round_trip_bit_identical(tmp_path, k, mmap):
    """Arrays, per-tree views, and query outputs survive save→load exactly.

    ``k=1`` (a one-sample forest) and ``k=5`` (non-power-of-two) cover the
    degenerate and ragged ends of the stacked layout.
    """
    forest = _result(40, k).forest
    path = tmp_path / "forest.rpz"
    save_forest(path, forest)
    loaded = load_forest(path, mmap=mmap)
    _assert_forest_identical(loaded, forest)
    for s in range(forest.size):
        t0, t1 = forest.tree(s), loaded.tree(s)
        assert t0.k == t1.k and t0.beta == t1.beta
        assert np.array_equal(t0.level_ids, t1.level_ids)
        assert np.array_equal(t0.cum_weights, t1.cum_weights)
    us, vs = _query_pairs(40)
    assert np.array_equal(forest.distances(us, vs), loaded.distances(us, vs))
    assert np.array_equal(
        forest.distance_upper_bounds(us, vs), loaded.distance_upper_bounds(us, vs)
    )
    assert np.array_equal(
        forest.median_distances(us, vs), loaded.median_distances(us, vs)
    )


def test_forest_round_trip_ragged_depths(tmp_path):
    """A wide weight range makes per-sample depths differ — the padded
    stacked layout (and its validation) must survive raggedness."""
    forest = _result(48, 6, wmax=64.0).forest
    assert forest.depths.min() < forest.depths.max(), "fixture not ragged"
    path = tmp_path / "ragged.rpz"
    save_forest(path, forest)
    for mmap in (False, True):
        _assert_forest_identical(load_forest(path, mmap=mmap), forest)


def test_forest_round_trip_single_vertex(tmp_path):
    """n=1: the smallest legal forest (one leaf per sample) round-trips."""
    g = Graph(1, np.empty((0, 2), dtype=np.int64), np.empty(0))
    pipe = Pipeline(g, PipelineConfig(embedding=EmbeddingConfig(method="direct"), seed=0))
    forest = pipe.sample_ensemble(3, seed=1, mode="batched").forest
    path = tmp_path / "one.rpz"
    save_forest(path, forest)
    loaded = load_forest(path, mmap=True)
    _assert_forest_identical(loaded, forest)
    assert np.array_equal(forest.distances([0], [0]), loaded.distances([0], [0]))


def test_memmap_load_does_not_copy_csr_arrays(tmp_path):
    """The acceptance pin: mmap=True maps the stacked arrays read-only.

    Two independent witnesses: the loaded arrays *are* ``np.memmap``
    instances backed by the artifact file, and the Python-side allocation
    delta across the load is a small fraction of the payload nbytes.
    """
    forest = _result(256, 12).forest
    payload = sum(getattr(forest, n).nbytes for n in FOREST_ARRAYS)
    assert payload > 1 << 18, "fixture too small to witness a copy"
    path = tmp_path / "big.rpz"
    save_forest(path, forest)

    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    loaded = load_forest(path, mmap=True)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    for name in ("level_ids", "radii", "edge_weights", "cum_weights", "parent"):
        arr = getattr(loaded, name)
        assert isinstance(arr, np.memmap), f"{name} was materialized"
        assert not arr.flags.writeable
    # Allocation overhead is headers + small arrays, never the payload.
    assert after - before < payload / 10
    # ... and the mapped arrays still read back bit-identically.
    assert np.array_equal(loaded.level_ids, forest.level_ids)


def test_in_memory_load_is_read_only_like_mmap(tmp_path):
    """mmap=False and mmap=True expose identical mutation semantics."""
    forest = _result(32, 3).forest
    path = tmp_path / "f.rpz"
    save_forest(path, forest)
    loaded = load_forest(path)
    assert not isinstance(loaded.level_ids, np.memmap)
    for name in ("betas", "depths", "radii", "edge_weights", "cum_weights",
                 "level_ids", "node_offsets", "parent", "node_level",
                 "node_leading"):
        arr = getattr(loaded, name)
        assert not arr.flags.writeable, f"{name} is writable after load"
    with pytest.raises(ValueError):
        loaded.level_ids[0, 0, 0] = -1
    # A private writable buffer is one explicit copy away.
    assert loaded.radii.copy().flags.writeable


# -- result round trips --------------------------------------------------------


@pytest.mark.parametrize("mmap", [False, True], ids=["inmem", "mmap"])
def test_result_round_trip(tmp_path, mmap):
    """PipelineResult: embeddings, LE lists, ledgers, timings, meta."""
    result = _result(40, 5)
    path = tmp_path / "result.rpz"
    result.save(path)
    loaded = load_result(path, mmap=mmap)
    assert len(loaded.embeddings) == len(result.embeddings)
    for e0, e1 in zip(result.embeddings, loaded.embeddings):
        assert np.array_equal(e0.rank, e1.rank)
        assert e0.beta == e1.beta
        assert e0.iterations == e1.iterations
        assert e0.le_lists.equals(e1.le_lists)
        assert e0.meta == e1.meta
    _assert_forest_identical(loaded.forest, result.forest)
    assert loaded.meta == result.meta
    assert loaded.timings == result.timings
    assert loaded.ledger.work == result.ledger.work
    assert loaded.ledger.depth == result.ledger.depth
    assert [(led.work, led.depth) for led in loaded.ledgers] == [
        (led.work, led.depth) for led in result.ledgers
    ]
    us, vs = _query_pairs(40, seed=4)
    assert np.array_equal(
        result.ensemble().median_distances(us, vs),
        loaded.ensemble().median_distances(us, vs),
    )


def test_from_artifacts_round_trip_is_read_only(tmp_path, monkeypatch):
    """A rehydrated result exposes only read-only storage, in freeze mode
    and out of it — loads are frozen unconditionally."""
    monkeypatch.setenv("REPRO_FREEZE", "1")
    pipe = _pipeline(24)
    path = tmp_path / "ens.rpz"
    pipe.save_artifacts(path, 3, seed=5)
    loaded = Pipeline.from_artifacts(path)
    assert not loaded.forest.level_ids.flags.writeable
    with pytest.raises(ValueError):
        loaded.forest.level_ids[0, 0, 0] = -1
    tree = loaded.forest.tree(0)
    with pytest.raises(ValueError):
        tree.radii[0] = -1.0
    # Frozen storage still answers queries normally.
    us, vs = _query_pairs(24, seed=2)
    assert loaded.forest.distances(us, vs).shape == (3, us.size)


def test_result_save_requires_batched_mode(tmp_path):
    pipe = _pipeline(24)
    serial = pipe.sample_ensemble(2, seed=3, mode="serial")
    assert serial.forest is None
    with pytest.raises(ValueError, match="batched"):
        serial.save(tmp_path / "nope.rpz")


def test_facade_save_and_from_artifacts(tmp_path):
    """Pipeline.save_artifacts is the one-call offline build step."""
    pipe = _pipeline(32)
    path = tmp_path / "ens.rpz"
    meta = pipe.save_artifacts(path, 4, seed=9)
    assert meta["kind"] == "result"
    loaded = Pipeline.from_artifacts(path, mmap=True)
    assert loaded.size == 4
    assert loaded.fingerprint == meta["fingerprint"]
    reference = _pipeline(32).sample_ensemble(4, seed=9, mode="batched")
    us, vs = _query_pairs(32, seed=1)
    assert np.array_equal(
        reference.forest.distances(us, vs), loaded.forest.distances(us, vs)
    )


# -- metric round trips --------------------------------------------------------


@pytest.mark.parametrize("mmap", [False, True], ids=["inmem", "mmap"])
def test_metric_round_trip(tmp_path, mmap):
    pipe = Pipeline(gen.random_graph(24, rng=2), PipelineConfig(seed=5))
    metric = pipe.embed_metric()
    path = tmp_path / "metric.rpz"
    save_metric(path, metric)
    loaded = load_metric(path, mmap=mmap)
    assert np.array_equal(loaded.matrix, metric.matrix)
    assert loaded.stretch_bound == metric.stretch_bound
    assert loaded.iterations == metric.iterations
    assert loaded.meta == metric.meta


# -- provenance + fingerprinting -----------------------------------------------


def test_content_fingerprint_is_order_insensitive_and_content_sensitive():
    a = content_fingerprint({"seed": 7, "config": {"eps": 0.25}})
    b = content_fingerprint({"config": {"eps": 0.25}, "seed": 7})
    c = content_fingerprint({"config": {"eps": 0.25}, "seed": 8})
    assert a == b
    assert a != c
    with pytest.raises(TypeError):
        content_fingerprint({"oops": object()})


def test_pipeline_fingerprint_depends_on_configs_and_seeds_only():
    r1 = _result(32, 3, seed=11, batch_seed=7)
    r2 = _result(32, 3, seed=11, batch_seed=7)
    r3 = _result(32, 3, seed=11, batch_seed=8)
    assert r1.fingerprint is not None
    assert r1.fingerprint == r2.fingerprint
    assert r1.fingerprint != r3.fingerprint


def test_artifact_meta_carries_provenance(tmp_path):
    result = _result(28, 3)
    path = tmp_path / "r.rpz"
    result.save(path)
    meta = read_artifact_meta(path)
    assert meta["schema_version"] == SCHEMA_VERSION
    assert meta["fingerprint"] == result.fingerprint
    assert meta["provenance"]["config"] == result.meta["config"]
    assert meta["arrays"]["forest/level_ids"]["dtype"] == "int64"


def test_forest_fingerprint_falls_back_to_array_digest(tmp_path):
    forest = _result(24, 2).forest
    p1, p2 = tmp_path / "a.rpz", tmp_path / "b.rpz"
    m1 = save_forest(p1, forest)
    m2 = save_forest(p2, forest)
    assert m1["fingerprint"] == m2["fingerprint"]  # content, not identity


# -- rejection of bad files ----------------------------------------------------


def _forest_artifact(tmp_path):
    path = tmp_path / "f.rpz"
    save_forest(path, _result(24, 2).forest)
    return path


def _rewrite_meta(path, mutate):
    """Rewrite an artifact with a mutated meta.json (same array members)."""
    with zipfile.ZipFile(path) as zf:
        meta = json.loads(zf.read("meta.json"))
        members = {
            name: zf.read(name) for name in zf.namelist() if name != "meta.json"
        }
    mutate(meta)
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as zf:
        zf.writestr("meta.json", json.dumps(meta))
        for name, blob in members.items():
            zf.writestr(name, blob)


def test_rejects_missing_and_non_zip_files(tmp_path):
    with pytest.raises(ArtifactError, match="no artifact file"):
        load_forest(tmp_path / "absent.rpz")
    junk = tmp_path / "junk.rpz"
    junk.write_bytes(b"this is not a zip file at all")
    with pytest.raises(ArtifactError, match="bad container"):
        load_forest(junk)


def test_rejects_zip_without_meta(tmp_path):
    path = tmp_path / "bare.rpz"
    with zipfile.ZipFile(path, "w") as zf:
        zf.writestr("something.npy", b"xx")
    with pytest.raises(ArtifactError, match="meta.json"):
        read_artifact_meta(path)


def test_rejects_unknown_schema_and_future_version(tmp_path):
    path = _forest_artifact(tmp_path)
    _rewrite_meta(path, lambda m: m.update(schema="other-format"))
    with pytest.raises(ArtifactError, match="unknown schema"):
        load_forest(path)
    path2 = _forest_artifact(tmp_path)
    _rewrite_meta(path2, lambda m: m.update(schema_version=SCHEMA_VERSION + 1))
    with pytest.raises(ArtifactError, match="not\\s+supported"):
        load_forest(path2)


def test_rejects_wrong_kind(tmp_path):
    pipe = Pipeline(gen.random_graph(16, rng=1), PipelineConfig(seed=2))
    path = tmp_path / "m.rpz"
    save_metric(path, pipe.embed_metric())
    with pytest.raises(ArtifactError, match="carries no forest"):
        load_forest(path)
    fpath = _forest_artifact(tmp_path)
    with pytest.raises(ArtifactError, match="not a 'metric'"):
        load_metric(fpath)
    with pytest.raises(ArtifactError, match="not a 'result'"):
        load_result(fpath)


def test_rejects_manifest_shape_and_dtype_mismatch(tmp_path):
    path = _forest_artifact(tmp_path)
    _rewrite_meta(
        path, lambda m: m["arrays"]["forest/betas"].update(shape=[999])
    )
    with pytest.raises(ArtifactError, match="manifest declares"):
        load_forest(path)
    path2 = _forest_artifact(tmp_path)
    _rewrite_meta(
        path2, lambda m: m["arrays"]["forest/depths"].update(dtype="int32")
    )
    with pytest.raises(ArtifactError, match="manifest declares"):
        load_forest(path2)


def test_rejects_missing_array_member(tmp_path):
    path = _forest_artifact(tmp_path)
    with zipfile.ZipFile(path) as zf:
        meta = zf.read("meta.json")
        members = {
            n: zf.read(n)
            for n in zf.namelist()
            if n not in ("meta.json", "forest/betas.npy")
        }
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as zf:
        zf.writestr("meta.json", meta)
        for name, blob in members.items():
            zf.writestr(name, blob)
    with pytest.raises(ArtifactError, match="no forest/betas.npy member"):
        load_forest(path)


def test_rejects_truncated_array_member(tmp_path):
    path = _forest_artifact(tmp_path)
    with zipfile.ZipFile(path) as zf:
        meta = zf.read("meta.json")
        members = {n: zf.read(n) for n in zf.namelist() if n != "meta.json"}
    members["forest/level_ids.npy"] = members["forest/level_ids.npy"][:64]
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as zf:
        zf.writestr("meta.json", meta)
        for name, blob in members.items():
            zf.writestr(name, blob)
    with pytest.raises(ArtifactError):
        load_forest(path)


def test_rejects_compressed_member_in_mmap_mode(tmp_path):
    path = _forest_artifact(tmp_path)
    with zipfile.ZipFile(path) as zf:
        meta = zf.read("meta.json")
        members = {n: zf.read(n) for n in zf.namelist() if n != "meta.json"}
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
        zf.writestr("meta.json", meta)
        for name, blob in members.items():
            zf.writestr(name, blob)
    with pytest.raises(ArtifactError, match="compressed"):
        load_forest(path, mmap=True)
    # ... but the in-memory path still reads deflated members fine.
    _assert_forest_identical(load_forest(path), load_forest(path, mmap=False))


def test_rejects_inconsistent_forest_header(tmp_path):
    path = _forest_artifact(tmp_path)
    _rewrite_meta(path, lambda m: m["forest"].update(n=7))
    with pytest.raises(ArtifactError, match="expected"):
        load_forest(path)
