"""End-to-end integration tests across subsystem boundaries.

Each test exercises a full pipeline the way a downstream user would:
generators -> hop sets -> H/oracle -> LE lists -> tree -> application,
asserting the composite guarantees (not just per-module contracts).
"""

import numpy as np
import pytest

from repro.apps.buyatbulk import CableType, Demand, buy_at_bulk
from repro.apps.kmedian import kmedian, kmedian_cost
from repro.congest import skeleton_frt
from repro.frt import (
    decomposition_of,
    sample_ensemble,
    sample_frt_tree,
    sample_frt_tree_via_oracle,
)
from repro.graph import generators as gen
from repro.graph.shortest_paths import dijkstra_distances
from repro.hopsets import hub_hopset, identity_hopset, rounded_hopset, verify_hopset
from repro.metric import approximate_metric
from repro.oracle import HOracle
from repro.pram import CostLedger


FAMILIES = {
    "cycle": lambda: gen.cycle(32, wmin=1, wmax=3, rng=1),
    "grid": lambda: gen.grid(6, 6, wmin=1, wmax=2, rng=2),
    "random": lambda: gen.random_graph(36, 90, rng=3),
    "tree": lambda: gen.weighted_tree(30, rng=4),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("pipeline", ["direct", "oracle-exact", "oracle-rounded"])
def test_pipeline_matrix_dominance_and_iterations(family, pipeline):
    """All pipeline × family combinations produce valid dominating trees."""
    g = FAMILIES[family]()
    D = dijkstra_distances(g)
    if pipeline == "direct":
        res = sample_frt_tree(g, rng=10)
    elif pipeline == "oracle-exact":
        res = sample_frt_tree_via_oracle(g, eps=0.0, d0=4, rng=11)
    else:
        res = sample_frt_tree_via_oracle(g, eps=0.25, d0=4, rng=12)
    M = res.tree.distance_matrix()
    assert np.all(M >= D - 1e-9)
    assert res.iterations <= g.n
    if pipeline.startswith("oracle"):
        assert res.iterations <= int(np.log2(g.n) ** 2) + 1


def test_hopset_feeds_every_consumer():
    """One hop set result drives the oracle, H, the metric, and the tree."""
    g = gen.cycle(28, wmin=1, wmax=2, rng=20)
    hop = rounded_hopset(hub_hopset(g, d0=4, rng=21), g, 0.2)
    assert verify_hopset(hop, g).ok
    oracle = HOracle(hop, rng=22)
    # metric through the same decomposition machinery
    from repro.mbf.dense import MinFilter

    states, _ = oracle.run(MinFilter())
    matrix = states.to_matrix()
    D = dijkstra_distances(g)
    off = ~np.eye(g.n, dtype=bool)
    assert np.all(matrix[off] >= D[off] - 1e-9)
    # tree through the same oracle
    res = sample_frt_tree_via_oracle(g, oracle=oracle, rng=23)
    assert np.all(res.tree.distance_matrix() >= D - 1e-9)
    # the tree's decomposition respects the (approximate) metric radii
    dec = decomposition_of(res.tree)
    assert dec.is_refinement_chain()


def test_metric_then_kmedian():
    """Theorem 6.2 -> Section 9: k-median on the approximate metric's
    candidate clique matches k-median on the true graph within the
    metric's stretch bound."""
    g = gen.random_graph(26, 60, rng=30)
    metric = approximate_metric(g, eps=0.1, d0=4, rng=31)
    res_true = kmedian(g, 3, trees=3, rng=32)
    # evaluate the chosen facilities under the approximate metric:
    approx_cost = metric.matrix[res_true.facilities].min(axis=0).sum()
    true_cost = res_true.cost
    assert true_cost <= approx_cost + 1e-9  # approx metric dominates
    assert approx_cost <= metric.stretch_bound * true_cost + 1e-9


def test_ensemble_drives_buyatbulk():
    """The intro's repeat-and-take-best pattern through the ensemble API."""
    g = gen.grid(5, 5, rng=40)
    demands = [Demand(0, 24, 7.0), Demand(4, 20, 3.0), Demand(2, 22, 5.0)]
    cables = [CableType(1.0, 1.0), CableType(10.0, 3.0)]
    ens = sample_ensemble(g, 4, rng=41)
    results = [
        buy_at_bulk(g, demands, cables, embedding=emb) for emb in ens.embeddings
    ]
    best = min(r.graph_cost for r in results)
    worst = max(r.graph_cost for r in results)
    assert best <= worst
    assert all(r.graph_cost >= r.lower_bound * (1 - 1e-9) for r in results)


def test_skeleton_tree_feeds_applications():
    """The Congest-produced tree is a regular FRTTree usable downstream."""
    g = gen.cycle_with_hub(64)
    res = skeleton_frt(g, eps=0.0, c=0.7, rng=50)
    demands = [Demand(0, 32, 2.0)]
    out = buy_at_bulk(
        g, demands, [CableType(1.0, 1.0)], rng=51,
        embedding=type("E", (), {"tree": res.tree, "beta": res.beta})(),
    )
    assert out.graph_cost >= out.lower_bound * (1 - 1e-9)


def test_identity_hopset_oracle_degenerates_to_direct():
    """With the identity hop set (d = SPD), the oracle's H is the exact
    metric, so its LE lists equal the direct graph LE lists."""
    g = gen.grid(4, 5, rng=60)
    rank = np.random.default_rng(61).permutation(g.n)
    from repro.frt.lelists import compute_le_lists, compute_le_lists_via_oracle

    hop = identity_hopset(g)
    oracle = HOracle(hop, rng=62)
    direct, _ = compute_le_lists(g, rank)
    via, iters = compute_le_lists_via_oracle(oracle, rank)
    assert via.to_dicts() == pytest.approx(direct.to_dicts())
    assert iters == 1  # H is a metric: single iteration


def test_ledger_composition_across_pipeline():
    """Work/depth accounting composes across hop set use, oracle, tree."""
    g = gen.cycle(24, rng=70)
    lo, ld = CostLedger(), CostLedger()
    sample_frt_tree_via_oracle(g, eps=0.2, d0=3, rng=71, ledger=lo)
    sample_frt_tree(g, rng=72, ledger=ld)
    assert lo.work > ld.work  # oracle pays (Λ+1)·d overhead per iteration
    assert lo.depth > 0 and ld.depth > 0


def test_kmedian_cost_consistency_with_metric():
    g = gen.barbell(5, bridge_len=6)
    res = kmedian(g, 2, trees=4, rng=80)
    assert res.cost == pytest.approx(kmedian_cost(g, res.facilities))
    one = kmedian(g, 1, trees=4, rng=81)
    assert res.cost <= one.cost  # more facilities never hurt
