"""The batched multi-sample MBF engine: layout, kernels, drivers, parity.

The acceptance contract of the batched engine is *bit-identical* output:
for every sample, the batched drivers must reproduce the serial engine's
LE lists, iteration counts, and cost-ledger charges exactly — the batch is
an implementation detail, not a semantic change.  These tests pin that
contract at every layer (kernels, ``run_dense_batched``,
``HOracle.run_batch``) including k=1 and non-power-of-two k.
"""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.hopsets import hub_hopset, rounded_hopset
from repro.mbf.dense import (
    BatchedFlatStates,
    BatchedLEFilter,
    FlatStates,
    LEFilter,
    MinFilter,
    aggregate,
    aggregate_batched,
    dense_iteration,
    dense_iteration_batched,
    propagate,
    propagate_batched,
    run_dense,
    run_dense_batched,
)
from repro.oracle import HOracle
from repro.pram import CostLedger


def _ranks(k, n, seed):
    rng = np.random.default_rng(seed)
    return np.stack([rng.permutation(n) for _ in range(k)])


def _assert_batch_matches_serial(batched, iters, serial):
    for s, (states, it) in enumerate(serial):
        assert batched.sample_states(s).equals(states), f"sample {s} lists differ"
        assert int(iters[s]) == it, f"sample {s} iteration count differs"


class TestBatchedFlatStates:
    def test_from_sources_stacks_samples(self):
        b = BatchedFlatStates.from_sources(3, 4)
        one = FlatStates.from_sources(4)
        assert b.k == 3 and b.n == 4 and b.total == 12
        for s in range(3):
            assert b.sample_states(s).equals(one)

    def test_from_states_roundtrip(self):
        g = gen.cycle(9, rng=0)
        parts = [
            run_dense(g, LEFilter(r))[0] for r in _ranks(4, g.n, 1)
        ]
        b = BatchedFlatStates.from_states(parts)
        assert b.k == 4
        for s, st in enumerate(parts):
            assert b.sample_states(s).equals(st)
        assert all(x.equals(y) for x, y in zip(b.to_states(), parts))

    def test_as_flat_view(self):
        b = BatchedFlatStates.from_sources(2, 3)
        flat = b.as_flat()
        assert flat.n == 6
        assert flat.total == b.total

    def test_take_subset_and_order(self):
        g = gen.cycle(7, rng=2)
        parts = [run_dense(g, LEFilter(r))[0] for r in _ranks(3, g.n, 3)]
        b = BatchedFlatStates.from_states(parts)
        sub = b.take([2, 0])
        assert sub.k == 2
        assert sub.sample_states(0).equals(parts[2])
        assert sub.sample_states(1).equals(parts[0])

    def test_sample_equal_is_per_sample(self):
        g = gen.cycle(7, rng=2)
        parts = [run_dense(g, LEFilter(r))[0] for r in _ranks(3, g.n, 3)]
        a = BatchedFlatStates.from_states(parts)
        c = BatchedFlatStates.from_states([parts[0], parts[0], parts[2]])
        eq = a.sample_equal(c)
        assert eq.tolist() == [True, parts[1].equals(parts[0]), True]

    def test_restrict_matches_per_sample_restrict(self):
        g = gen.grid(3, 3, rng=4)
        parts = [run_dense(g, LEFilter(r))[0] for r in _ranks(2, g.n, 5)]
        b = BatchedFlatStates.from_states(parts)
        mask = np.random.default_rng(6).random(g.n) < 0.5
        restricted = b.restrict(mask)
        for s, st in enumerate(parts):
            assert restricted.sample_states(s).equals(st.restrict(mask))

    def test_sample_totals(self):
        g = gen.cycle(6, rng=7)
        parts = [run_dense(g, LEFilter(r))[0] for r in _ranks(2, g.n, 8)]
        b = BatchedFlatStates.from_states(parts)
        assert b.sample_totals().tolist() == [p.total for p in parts]

    def test_mixed_node_counts_rejected(self):
        with pytest.raises(ValueError, match="same node count"):
            BatchedFlatStates.from_states(
                [FlatStates.from_sources(3), FlatStates.from_sources(4)]
            )

    def test_concat_inverts_sharding(self):
        """concat(split shards) == original, bit for bit — the sharded
        ensemble's re-assembly primitive."""
        g = gen.cycle(9, rng=0)
        parts = [run_dense(g, LEFilter(r))[0] for r in _ranks(5, g.n, 11)]
        b = BatchedFlatStates.from_states(parts)
        for bounds in ([(0, 2), (2, 5)], [(0, 1), (1, 3), (3, 5)], [(0, 5)]):
            shards = [b.take(list(range(lo, hi))) for lo, hi in bounds]
            merged = BatchedFlatStates.concat(shards)
            assert merged.k == b.k and merged.n == b.n
            assert merged.offsets.dtype == b.offsets.dtype
            assert np.array_equal(merged.offsets, b.offsets)
            assert np.array_equal(merged.ids, b.ids)
            assert np.array_equal(merged.dists, b.dists)

    def test_concat_stacks_distinct_batches(self):
        g = gen.cycle(7, rng=2)
        parts = [run_dense(g, LEFilter(r))[0] for r in _ranks(3, g.n, 12)]
        merged = BatchedFlatStates.concat(
            [BatchedFlatStates.from_states([p]) for p in parts]
        )
        assert merged.k == 3
        for s, st in enumerate(parts):
            assert merged.sample_states(s).equals(st)

    def test_concat_rejects_empty_and_mixed_n(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchedFlatStates.concat([])
        with pytest.raises(ValueError, match="same node count"):
            BatchedFlatStates.concat(
                [BatchedFlatStates.from_sources(1, 3),
                 BatchedFlatStates.from_sources(1, 4)]
            )


class TestBatchedLEFilter:
    def test_validates_shape(self):
        with pytest.raises(ValueError, match=r"\(k, n\)"):
            BatchedLEFilter(np.arange(5))

    def test_entry_ranks_per_sample(self):
        ranks = np.array([[0, 1, 2], [2, 1, 0]])
        f = BatchedLEFilter(ranks)
        tgt = np.array([0, 1, 3, 5])  # samples 0, 0, 1, 1
        ids = np.array([2, 0, 0, 2])
        assert f.entry_ranks(tgt, ids).tolist() == [2, 0, 2, 0]

    def test_take_reslices(self):
        ranks = _ranks(4, 6, 9)
        sub = BatchedLEFilter(ranks).take(np.array([3, 1]))
        assert np.array_equal(sub.ranks, ranks[[3, 1]])


class TestBatchedKernels:
    def test_propagate_batched_matches_serial(self):
        g = gen.cycle(8, rng=0)
        parts = [run_dense(g, LEFilter(r), h=1)[0] for r in _ranks(3, g.n, 1)]
        b = BatchedFlatStates.from_states(parts)
        src, dst, w = g.directed_edges()
        vtgt, ids, dists = propagate_batched(b, src, dst, w)
        for s, st in enumerate(parts):
            t_s, i_s, d_s = propagate(st, src, dst, w)
            in_sample = (vtgt // g.n) == s
            assert np.array_equal(vtgt[in_sample] - s * g.n, t_s)
            assert np.array_equal(ids[in_sample], i_s)
            assert np.array_equal(dists[in_sample], d_s)

    def test_aggregate_batched_le_matches_serial(self):
        g = gen.random_graph(12, 25, rng=2)
        ranks = _ranks(3, g.n, 3)
        parts = [run_dense(g, LEFilter(r), h=1)[0] for r in ranks]
        b = BatchedFlatStates.from_states(parts)
        src, dst, w = g.directed_edges()
        vtgt, ids, dists = propagate_batched(b, src, dst, w)
        out = aggregate_batched(3, g.n, vtgt, ids, dists, BatchedLEFilter(ranks))
        for s, (st, r) in enumerate(zip(parts, ranks)):
            t_s, i_s, d_s = propagate(st, src, dst, w)
            expect = aggregate(g.n, t_s, i_s, d_s, LEFilter(r))
            assert out.sample_states(s).equals(expect)

    def test_dense_iteration_batched_minfilter(self):
        """The generic (sample-oblivious) path: MinFilter over all samples
        in one pass equals per-sample serial iterations."""
        g = gen.grid(3, 4, rng=4)
        b = BatchedFlatStates.from_sources(3, g.n)
        out = dense_iteration_batched(g, b, MinFilter())
        expect = dense_iteration(g, FlatStates.from_sources(g.n), MinFilter())
        for s in range(3):
            assert out.sample_states(s).equals(expect)

    def test_filter_batch_shape_mismatch_rejected(self):
        g = gen.cycle(5, rng=5)
        b = BatchedFlatStates.from_sources(2, g.n)
        with pytest.raises(ValueError, match="does not match"):
            dense_iteration_batched(g, b, BatchedLEFilter(_ranks(3, g.n, 6)))


class TestRunDenseBatchedParity:
    @pytest.mark.parametrize("k", [1, 3, 5, 8])
    def test_le_lists_bit_identical(self, k):
        g = gen.random_graph(24, 60, rng=10)
        ranks = _ranks(k, g.n, 11)
        serial = [run_dense(g, LEFilter(r)) for r in ranks]
        batched, iters = run_dense_batched(g, BatchedLEFilter(ranks), k)
        _assert_batch_matches_serial(batched, iters, serial)

    def test_families(self, small_graphs):
        for g in small_graphs:
            ranks = _ranks(3, g.n, 12)
            serial = [run_dense(g, LEFilter(r)) for r in ranks]
            batched, iters = run_dense_batched(g, BatchedLEFilter(ranks), 3)
            _assert_batch_matches_serial(batched, iters, serial)

    def test_ledgers_bit_identical(self):
        """Per-sample batched ledgers charge exactly the serial model cost
        (work *and* depth), including each sample's confirming iteration
        and nothing after it."""
        g = gen.random_graph(20, 50, rng=13)
        ranks = _ranks(4, g.n, 14)
        serial_ledgers = [CostLedger() for _ in range(4)]
        batch_ledgers = [CostLedger() for _ in range(4)]
        for r, led in zip(ranks, serial_ledgers):
            run_dense(g, LEFilter(r), ledger=led)
        run_dense_batched(g, BatchedLEFilter(ranks), 4, ledgers=batch_ledgers)
        for s, (a, b) in enumerate(zip(serial_ledgers, batch_ledgers)):
            assert (a.work, a.depth) == (b.work, b.depth), f"sample {s}"

    def test_fixed_h_mode(self):
        g = gen.cycle(10, rng=15)
        ranks = _ranks(3, g.n, 16)
        batched, iters = run_dense_batched(g, BatchedLEFilter(ranks), 3, h=2)
        assert iters.tolist() == [2, 2, 2]
        for s, r in enumerate(ranks):
            expect, _ = run_dense(g, LEFilter(r), h=2)
            assert batched.sample_states(s).equals(expect)

    def test_minfilter_batch(self):
        g = gen.grid(4, 4, rng=17)
        expect, it = run_dense(g, MinFilter())
        batched, iters = run_dense_batched(g, MinFilter(), 3)
        assert iters.tolist() == [it, it, it]
        for s in range(3):
            assert batched.sample_states(s).equals(expect)

    def test_max_iterations_cap(self):
        g = gen.path_graph(8)
        with pytest.raises(RuntimeError, match="no fixpoint"):
            run_dense_batched(g, MinFilter(), 2, max_iterations=3)
        with pytest.raises(ValueError, match="max_iterations"):
            run_dense_batched(g, MinFilter(), 2, max_iterations=0)

    def test_ledger_count_validated(self):
        g = gen.cycle(6, rng=18)
        with pytest.raises(ValueError, match="one ledger per sample"):
            run_dense_batched(
                g, BatchedLEFilter(_ranks(3, g.n, 19)), 3, ledgers=[CostLedger()]
            )

    def test_spec_shape_validated(self):
        g = gen.cycle(6, rng=18)
        with pytest.raises(ValueError, match="does not match"):
            run_dense_batched(g, BatchedLEFilter(_ranks(2, g.n, 19)), 3)


class TestOracleRunBatchParity:
    def _oracle(self, g, seed, **kwargs):
        rng = np.random.default_rng(seed)
        hop = rounded_hopset(hub_hopset(g, 4, rng=rng), g, 0.25)
        return HOracle(hop, rng=rng, **kwargs)

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_le_lists_bit_identical(self, k):
        g = gen.cycle(20, wmin=1, wmax=2, rng=20)
        oracle = self._oracle(g, 21)
        ranks = _ranks(k, g.n, 22)
        serial = [oracle.run(LEFilter(r)) for r in ranks]
        batched, iters = oracle.run_batch(BatchedLEFilter(ranks), k)
        _assert_batch_matches_serial(batched, iters, serial)

    def test_ledgers_bit_identical(self):
        g = gen.random_graph(18, 40, rng=23)
        oracle = self._oracle(g, 24)
        ranks = _ranks(3, g.n, 25)
        serial_ledgers = [CostLedger() for _ in range(3)]
        batch_ledgers = [CostLedger() for _ in range(3)]
        for r, led in zip(ranks, serial_ledgers):
            oracle.run(LEFilter(r), ledger=led)
        oracle.run_batch(BatchedLEFilter(ranks), 3, ledgers=batch_ledgers)
        for s, (a, b) in enumerate(zip(serial_ledgers, batch_ledgers)):
            assert (a.work, a.depth) == (b.work, b.depth), f"sample {s}"

    def test_without_inner_early_exit(self):
        """The literal (Λ+1)·d inner cost path batches identically too."""
        g = gen.cycle(14, rng=26)
        oracle = self._oracle(g, 27, inner_early_exit=False)
        ranks = _ranks(3, g.n, 28)
        serial = [oracle.run(LEFilter(r)) for r in ranks]
        batched, iters = oracle.run_batch(BatchedLEFilter(ranks), 3)
        _assert_batch_matches_serial(batched, iters, serial)

    def test_fixed_h_mode(self):
        g = gen.cycle(12, rng=29)
        oracle = self._oracle(g, 30)
        ranks = _ranks(2, g.n, 31)
        batched, iters = oracle.run_batch(BatchedLEFilter(ranks), 2, h=2)
        assert iters.tolist() == [2, 2]
        for s, r in enumerate(ranks):
            expect, _ = oracle.run(LEFilter(r), h=2)
            assert batched.sample_states(s).equals(expect)

    def test_minfilter_apsp_batch(self):
        """run_batch with a sample-oblivious filter: batched APSP on H."""
        g = gen.cycle(10, rng=32)
        oracle = self._oracle(g, 33)
        expect, it = oracle.run(MinFilter())
        batched, iters = oracle.run_batch(MinFilter(), 2)
        assert iters.tolist() == [it, it]
        for s in range(2):
            assert batched.sample_states(s).equals(expect)
