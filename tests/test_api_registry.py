"""The string-keyed MBF backend registry of repro.api."""

import numpy as np
import pytest

from repro.api import (
    MBFBackend,
    available_backends,
    generators as gen,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.mbf.dense import FlatStates


class TestLookup:
    def test_builtins_registered(self):
        names = available_backends()
        assert "dense" in names
        assert "reference" in names
        assert names == tuple(sorted(names))

    def test_get_backend(self):
        b = get_backend("dense")
        assert b.name == "dense"
        assert b.module == "repro.mbf.dense"
        assert callable(b.le_lists)

    def test_unknown_key_raises_with_available_set(self):
        with pytest.raises(KeyError, match="dense"):
            get_backend("nope")

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister_backend("nope")


class TestRegistration:
    def test_register_and_unregister(self):
        backend = MBFBackend(name="test-third-party", le_lists=lambda G, r, **kw: (None, 0))
        try:
            register_backend(backend)
            assert get_backend("test-third-party") is backend
            assert "test-third-party" in available_backends()
        finally:
            unregister_backend("test-third-party")
        assert "test-third-party" not in available_backends()

    def test_duplicate_requires_overwrite(self):
        backend = MBFBackend(name="test-dup", le_lists=lambda G, r, **kw: (None, 0))
        try:
            register_backend(backend)
            with pytest.raises(ValueError, match="already registered"):
                register_backend(backend)
            replacement = MBFBackend(name="test-dup", le_lists=lambda G, r, **kw: (None, 1))
            register_backend(replacement, overwrite=True)
            assert get_backend("test-dup") is replacement
        finally:
            unregister_backend("test-dup")

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            MBFBackend(name="", le_lists=lambda G, r: (None, 0))
        with pytest.raises(TypeError):
            MBFBackend(name="x", le_lists="not-callable")
        with pytest.raises(TypeError):
            register_backend("dense")


class TestBackendEquivalence:
    def test_dense_and_reference_agree(self):
        g = gen.random_graph(14, 30, rng=0)
        rank = np.random.default_rng(1).permutation(g.n)
        dense, it_d = get_backend("dense").le_lists(g, rank)
        ref, it_r = get_backend("reference").le_lists(g, rank)
        assert isinstance(ref, FlatStates)
        assert dense.to_dicts() == pytest.approx(ref.to_dicts())
        assert it_d == it_r

    def test_fixed_iteration_count(self):
        g = gen.cycle(10, rng=2)
        rank = np.random.default_rng(3).permutation(g.n)
        dense, it_d = get_backend("dense").le_lists(g, rank, h=2)
        ref, it_r = get_backend("reference").le_lists(g, rank, h=2)
        assert it_d == it_r == 2
        assert dense.to_dicts() == pytest.approx(ref.to_dicts())

    def test_rank_validated(self):
        g = gen.cycle(6, rng=4)
        bad = np.zeros(6, dtype=np.int64)
        for name in ("dense", "reference"):
            with pytest.raises(ValueError):
                get_backend(name).le_lists(g, bad)


class TestBatchedDrivers:
    def test_dense_batched_registered(self):
        b = get_backend("dense-batched")
        assert b.module == "repro.mbf.dense"
        assert callable(b.le_lists) and callable(b.le_lists_batch)
        assert get_backend("dense").le_lists_batch is b.le_lists_batch

    def test_reference_has_no_batch_driver(self):
        assert get_backend("reference").le_lists_batch is None

    def test_le_lists_batch_validated(self):
        with pytest.raises(TypeError, match="le_lists_batch"):
            MBFBackend(name="x", le_lists=lambda *a, **k: None, le_lists_batch=42)

    def test_dense_batched_single_sample_parity(self):
        """dense-batched's scalar driver routes through the batched engine
        with k=1 and matches the dense driver bit for bit."""
        g = gen.random_graph(20, 45, rng=30)
        rank = np.random.default_rng(31).permutation(g.n)
        a, it_a = get_backend("dense").le_lists(g, rank)
        b, it_b = get_backend("dense-batched").le_lists(g, rank)
        assert it_a == it_b
        assert a.equals(b)

    def test_batch_driver_matches_scalar_driver(self):
        g = gen.random_graph(16, 35, rng=32)
        rng = np.random.default_rng(33)
        ranks = np.stack([rng.permutation(g.n) for _ in range(3)])
        batch = get_backend("dense").le_lists_batch
        lists, iters = batch(g, ranks)
        for s in range(3):
            expect, it = get_backend("dense").le_lists(g, ranks[s])
            assert lists.sample_states(s).equals(expect)
            assert int(iters[s]) == it
