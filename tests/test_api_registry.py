"""The string-keyed, capability-based MBF engine registry of repro.api."""

import numpy as np
import pytest

from repro.api import (
    MBFBackend,
    MBFEngine,
    MBFProblem,
    available_backends,
    available_engines,
    engines_for,
    generators as gen,
    get_backend,
    get_engine,
    problems,
    register_backend,
    register_engine,
    resolve_engine,
    solve,
    unregister_backend,
    unregister_engine,
)
from repro.mbf.dense import FlatStates


class TestLookup:
    def test_builtins_registered(self):
        names = available_backends()
        assert "dense" in names
        assert "reference" in names
        assert names == tuple(sorted(names))

    def test_get_backend(self):
        b = get_backend("dense")
        assert b.name == "dense"
        assert b.module == "repro.mbf.dense"
        assert callable(b.le_lists)

    def test_unknown_key_raises_with_available_set(self):
        with pytest.raises(KeyError, match="dense"):
            get_backend("nope")

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister_backend("nope")


class TestRegistration:
    def test_register_and_unregister(self):
        backend = MBFBackend(name="test-third-party", le_lists=lambda G, r, **kw: (None, 0))
        try:
            register_backend(backend)
            assert get_backend("test-third-party") is backend
            assert "test-third-party" in available_backends()
        finally:
            unregister_backend("test-third-party")
        assert "test-third-party" not in available_backends()

    def test_duplicate_requires_overwrite(self):
        backend = MBFBackend(name="test-dup", le_lists=lambda G, r, **kw: (None, 0))
        try:
            register_backend(backend)
            with pytest.raises(ValueError, match="already registered"):
                register_backend(backend)
            replacement = MBFBackend(name="test-dup", le_lists=lambda G, r, **kw: (None, 1))
            register_backend(replacement, overwrite=True)
            assert get_backend("test-dup") is replacement
        finally:
            unregister_backend("test-dup")

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            MBFBackend(name="", le_lists=lambda G, r: (None, 0))
        with pytest.raises(TypeError):
            MBFBackend(name="x", le_lists="not-callable")
        with pytest.raises(TypeError):
            register_backend("dense")


class TestBackendEquivalence:
    def test_dense_and_reference_agree(self):
        g = gen.random_graph(14, 30, rng=0)
        rank = np.random.default_rng(1).permutation(g.n)
        dense, it_d = get_backend("dense").le_lists(g, rank)
        ref, it_r = get_backend("reference").le_lists(g, rank)
        assert isinstance(ref, FlatStates)
        assert dense.to_dicts() == pytest.approx(ref.to_dicts())
        assert it_d == it_r

    def test_fixed_iteration_count(self):
        g = gen.cycle(10, rng=2)
        rank = np.random.default_rng(3).permutation(g.n)
        dense, it_d = get_backend("dense").le_lists(g, rank, h=2)
        ref, it_r = get_backend("reference").le_lists(g, rank, h=2)
        assert it_d == it_r == 2
        assert dense.to_dicts() == pytest.approx(ref.to_dicts())

    def test_rank_validated(self):
        g = gen.cycle(6, rng=4)
        bad = np.zeros(6, dtype=np.int64)
        for name in ("dense", "reference"):
            with pytest.raises(ValueError):
                get_backend(name).le_lists(g, bad)


class TestEngineRegistry:
    def test_builtin_engines_and_capabilities(self):
        assert set(available_engines()) >= {"dense", "dense-batched", "reference"}
        dense = get_engine("dense")
        ref = get_engine("reference")
        assert "distance-map" in dense.families and "min-plus" in dense.families
        assert "all-paths" not in dense.families
        assert "all-paths" in ref.families
        assert engines_for("all-paths") == ("reference",)
        assert set(engines_for("max-min")) >= {"dense", "reference"}
        with pytest.raises(ValueError, match="unknown state family"):
            engines_for("minplus")  # typo'd family names fail loudly

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="name"):
            MBFEngine(name="", solve=lambda *a, **k: None, families=("min-plus",))
        with pytest.raises(ValueError, match="families"):
            MBFEngine(name="x", solve=lambda *a, **k: None)  # solve without families
        with pytest.raises(ValueError, match="families"):
            MBFEngine(name="x", families=("min-plus",), le_lists=lambda *a, **k: None)
        with pytest.raises(ValueError, match="capability"):
            MBFEngine(name="x")
        with pytest.raises(ValueError, match="serial le_lists"):
            # batch-only engines are unreachable from every driver surface
            MBFEngine(name="x", le_lists_batch=lambda *a, **k: None)
        with pytest.raises(ValueError, match="unknown state families"):
            # typo'd family names must fail loudly, not register unselectably
            MBFEngine(name="x", solve=lambda *a, **k: None, families=("min_plus",))
        with pytest.raises(TypeError, match="callable"):
            MBFEngine(name="x", solve=7, families=("min-plus",))
        with pytest.raises(TypeError):
            register_engine("dense")

    def test_register_resolve_unregister_custom_engine(self):
        calls = []

        def my_solve(G, problem, *, h=None, ledger=None, **kw):
            calls.append(problem.name)
            return "custom", 0

        eng = MBFEngine(name="test-custom", solve=my_solve, families=("all-paths",))
        try:
            register_engine(eng)
            assert get_engine("test-custom") is eng
            with pytest.raises(ValueError, match="already registered"):
                register_engine(eng)
            # Explicit selection dispatches to the custom driver...
            g = gen.path_graph(4)
            out, it = solve(g, problems.k_sdp(4, 1, sink=0), engine="test-custom")
            assert out == "custom" and calls == ["k-SDP(k=1, s=0)"]
            # ...but auto still prefers the built-in preference order.
            assert resolve_engine(problems.k_sdp(4, 1, sink=0)).name == "reference"
            # Engines without LE drivers are not backends.
            assert "test-custom" not in available_backends()
            with pytest.raises(KeyError, match="unknown MBF backend"):
                get_backend("test-custom")
        finally:
            unregister_engine("test-custom")
        assert "test-custom" not in available_engines()
        with pytest.raises(KeyError):
            unregister_engine("test-custom")

    def test_solve_only_engine_name_not_free_for_backends(self):
        """A natively registered solve-only engine is another plugin's
        slot: register_backend must not silently graft onto it."""
        register_engine(
            MBFEngine(
                name="test-solve-only",
                solve=lambda *a, **k: ("x", 0),
                families=("all-paths",),
                description="plugin A engine",
            )
        )
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend(
                    MBFBackend(name="test-solve-only", le_lists=lambda *a, **k: (None, 0))
                )
            assert get_engine("test-solve-only").description == "plugin A engine"
        finally:
            unregister_engine("test-solve-only")

    def test_backend_overwrite_takes_both_le_drivers_verbatim(self):
        """Overwriting takes the backend's LE drivers exactly as given —
        inheriting the old batched driver next to a new serial one would
        silently pair two different engines in serial vs batched mode;
        a missing batched driver must instead fail loudly there."""
        orig = get_backend("dense")
        try:
            register_backend(MBFBackend(name="dense", le_lists=orig.le_lists), overwrite=True)
            assert get_engine("dense").le_lists_batch is None
            assert get_backend("dense").le_lists_batch is None
        finally:
            register_backend(orig, overwrite=True)
        assert get_backend("dense") is orig
        assert get_engine("dense").le_lists_batch is orig.le_lists_batch

    def test_minimal_solve_signature_cap_error(self):
        """A driver with the minimal documented signature works without a
        cap and fails with a capability message when one is supplied."""

        def minimal(G, problem, *, h=None, ledger=None):
            return "ok", 0

        register_engine(MBFEngine(name="test-minimal", solve=minimal, families=("min-plus",)))
        try:
            g = gen.path_graph(4)
            assert solve(g, problems.sssp(4, 0), engine="test-minimal") == ("ok", 0)
            with pytest.raises(TypeError, match="does not accept"):
                solve(g, problems.sssp(4, 0), engine="test-minimal", max_iterations=3)
        finally:
            unregister_engine("test-minimal")

    def test_explicit_engine_capability_mismatch(self):
        g = gen.path_graph(4)
        with pytest.raises(ValueError, match="cannot solve"):
            solve(g, problems.k_sdp(4, 1, sink=0), engine="dense")
        with pytest.raises(KeyError, match="unknown MBF engine"):
            solve(g, problems.sssp(4, 0), engine="nope")

    def test_explicit_engine_requires_dense_form(self):
        """Pinning a dense engine on a formless problem fails at resolve
        time (capability check), not deep inside the driver."""
        inst = problems.sssp(4, 0)
        stripped = MBFProblem(inst.algo, inst.x0, inst.decode, family=inst.family)
        with pytest.raises(ValueError, match="dense form"):
            resolve_engine(stripped, "dense")

    def test_backend_overwrite_keeps_solve_capability(self):
        """A legacy register_backend(..., overwrite=True) round-trip on a
        built-in name swaps the LE drivers but must not strip the engine's
        solve capability."""
        orig = get_backend("dense")
        calls = []

        def wrapped(G, rank, **kw):
            calls.append(1)
            return orig.le_lists(G, rank, **kw)

        g = gen.path_graph(5)
        try:
            register_backend(
                MBFBackend(name="dense", le_lists=wrapped), overwrite=True
            )
            lists, _ = get_backend("dense").le_lists(g, np.arange(5))
            assert calls  # the instrumented driver is live...
            out, _ = solve(g, problems.sssp(5, 0), engine="dense")
            assert np.array_equal(out, [0.0, 1.0, 2.0, 3.0, 4.0])  # ...solve intact
            # the engine's provenance fields survive a blank-field backend
            assert get_engine("dense").module == "repro.mbf.dense"
            assert get_engine("dense").description
        finally:
            register_backend(orig, overwrite=True)
        assert get_backend("dense").le_lists is orig.le_lists
        assert get_engine("dense").solve is not None

    def test_unregister_backend_keeps_solve_engine(self):
        """unregister_backend removes the LE view; a solve driver on the
        same record survives (LE-only engines are removed entirely)."""

        def my_solve(G, problem, *, h=None, ledger=None, **kw):
            return "x", 0

        register_engine(
            MBFEngine(
                name="test-both",
                solve=my_solve,
                families=("all-paths",),
                le_lists=lambda G, r, **kw: (None, 0),
            )
        )
        try:
            assert "test-both" in available_backends()
            unregister_backend("test-both")
            assert "test-both" not in available_backends()
            assert "test-both" in available_engines()  # solve survives
            with pytest.raises(KeyError, match="unknown MBF backend"):
                get_backend("test-both")
            assert get_engine("test-both").solve is my_solve
            # The freed name accepts a fresh backend registration (no
            # overwrite needed — the legacy unregister/register round-trip)
            # and the solve capability merges back in.
            fresh = MBFBackend(name="test-both", le_lists=lambda G, r, **kw: (None, 1))
            register_backend(fresh)
            assert get_backend("test-both") is fresh
            assert get_engine("test-both").solve is my_solve
        finally:
            unregister_engine("test-both")

    def test_backend_shim_projects_engine_record(self):
        """get_backend is a deprecated, identity-stable view over engines."""
        dense = get_engine("dense")
        view = get_backend("dense")
        assert view.le_lists is dense.le_lists
        assert view.le_lists_batch is dense.le_lists_batch
        assert view.description == dense.description
        assert get_backend("dense") is view  # cached: stable identity


class TestBatchedDrivers:
    def test_dense_batched_registered(self):
        b = get_backend("dense-batched")
        assert b.module == "repro.mbf.dense"
        assert callable(b.le_lists) and callable(b.le_lists_batch)
        assert get_backend("dense").le_lists_batch is b.le_lists_batch

    def test_reference_has_no_batch_driver(self):
        assert get_backend("reference").le_lists_batch is None

    def test_le_lists_batch_validated(self):
        with pytest.raises(TypeError, match="le_lists_batch"):
            MBFBackend(name="x", le_lists=lambda *a, **k: None, le_lists_batch=42)

    def test_dense_batched_single_sample_parity(self):
        """dense-batched's scalar driver routes through the batched engine
        with k=1 and matches the dense driver bit for bit."""
        g = gen.random_graph(20, 45, rng=30)
        rank = np.random.default_rng(31).permutation(g.n)
        a, it_a = get_backend("dense").le_lists(g, rank)
        b, it_b = get_backend("dense-batched").le_lists(g, rank)
        assert it_a == it_b
        assert a.equals(b)

    def test_batch_driver_matches_scalar_driver(self):
        g = gen.random_graph(16, 35, rng=32)
        rng = np.random.default_rng(33)
        ranks = np.stack([rng.permutation(g.n) for _ in range(3)])
        batch = get_backend("dense").le_lists_batch
        lists, iters = batch(g, ranks)
        for s in range(3):
            expect, it = get_backend("dense").le_lists(g, ranks[s])
            assert lists.sample_states(s).equals(expect)
            assert int(iters[s]) == it
