"""Tests for semiring matrix computations (the Section 1.1 baseline)."""

import math

import numpy as np
import pytest

from repro.algebra import BooleanSemiring, MaxMin, MinPlus
from repro.graph import generators as gen
from repro.graph.shortest_paths import dijkstra_distances, shortest_path_diameter
from repro.mbf.matrix import (
    distance_matrix_by_squaring,
    min_plus_adjacency,
    semiring_matmul,
    semiring_matrix_power,
)
from repro.pram import CostLedger


class TestMinPlusAdjacency:
    def test_structure(self):
        g = gen.path_graph(4)
        A = min_plus_adjacency(g)
        assert np.all(np.diag(A) == 0)
        assert A[0, 1] == 1.0 and np.isinf(A[0, 2])
        assert np.array_equal(A, A.T)


class TestSquaring:
    def test_matches_dijkstra(self, small_graphs):
        for g in small_graphs:
            D, _ = distance_matrix_by_squaring(g)
            assert np.allclose(D, dijkstra_distances(g))

    def test_squarings_log_of_spd(self, small_graphs):
        # Fixpoint after ceil(log2(SPD)) squarings [15].
        for g in small_graphs:
            spd = shortest_path_diameter(g)
            _, sq = distance_matrix_by_squaring(g)
            assert sq <= max(1, math.ceil(math.log2(max(spd, 1)))) + 1

    def test_path_graph_exact_squarings(self):
        g = gen.path_graph(17)  # SPD = 16
        _, sq = distance_matrix_by_squaring(g)
        assert sq == 4  # 2^4 = 16

    def test_cubic_work_charged(self):
        g = gen.cycle(16, rng=0)
        ledger = CostLedger()
        distance_matrix_by_squaring(g, ledger=ledger)
        n = 16
        # at least one squaring at n^3 work; depth stays logarithmic/squaring
        assert ledger.work >= n**3
        assert ledger.depth <= 20 * math.ceil(math.log2(n))

    def test_work_comparison_vs_le_pipeline(self):
        # The paper's Section 1.1 point: squaring pays Ω(n³) even on sparse
        # graphs, the MBF-like pipeline does not.
        from repro.frt import sample_frt_tree

        g = gen.random_graph(128, 3 * 128, rng=1)
        l_sq, l_le = CostLedger(), CostLedger()
        distance_matrix_by_squaring(g, ledger=l_sq)
        sample_frt_tree(g, rng=2, ledger=l_le)
        assert l_le.work < l_sq.work / 4


class TestGenericSemiringMatrices:
    def test_boolean_reachability(self):
        g = gen.path_graph(4)
        B = BooleanSemiring()
        A = [[(i == j) or g.has_edge(i, j) for j in range(4)] for i in range(4)]
        A2 = semiring_matrix_power(B, A, 2)
        assert A2[0][2] is True or A2[0][2] == 1
        assert not A2[0][3]
        A3 = semiring_matrix_power(B, A, 3)
        assert A3[0][3]

    def test_maxmin_widest_paths(self):
        # Widest path on a 3-path with widths 5, 2: width(0,2) = 2.
        from repro.graph.core import Graph

        g = Graph.from_edge_list(3, [(0, 1, 5.0), (1, 2, 2.0)])
        S = MaxMin()
        A = [
            [S.one if i == j else (float(g.adjacency()[i, j]) or S.zero) for j in range(3)]
            for i in range(3)
        ]
        A2 = semiring_matrix_power(S, A, 2)
        assert A2[0][2] == 2.0

    def test_minplus_power_equals_hop_limited(self):
        from repro.graph.shortest_paths import hop_limited_distances

        g = gen.cycle(6, rng=0)
        S = MinPlus()
        A = min_plus_adjacency(g).tolist()
        for h in (1, 2, 3):
            Ah = semiring_matrix_power(S, A, h)
            want = hop_limited_distances(g, h)
            assert np.allclose(np.array(Ah), want)

    def test_dimension_validation(self):
        S = MinPlus()
        with pytest.raises(ValueError):
            semiring_matmul(S, [[0.0, 1.0]], [[0.0, 1.0]])

    def test_power_validation(self):
        S = MinPlus()
        with pytest.raises(ValueError):
            semiring_matrix_power(S, [[0.0]], 0)
