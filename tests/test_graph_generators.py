"""Tests for graph generators."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.shortest_paths import shortest_path_diameter


class TestCycleAndPath:
    def test_cycle_shape(self):
        g = gen.cycle(8)
        assert g.n == 8 and g.m == 8
        assert np.all(g.degrees() == 2)
        assert g.is_connected()

    def test_cycle_min_size(self):
        with pytest.raises(ValueError):
            gen.cycle(2)

    def test_path_spd(self):
        g = gen.path_graph(10)
        assert shortest_path_diameter(g) == 9

    def test_cycle_spd_half(self):
        g = gen.cycle(12)
        assert shortest_path_diameter(g) == 6

    def test_weighted_cycle_reproducible(self):
        a = gen.cycle(6, wmin=1, wmax=3, rng=5)
        b = gen.cycle(6, wmin=1, wmax=3, rng=5)
        assert a == b


class TestGrid:
    def test_shape(self):
        g = gen.grid(3, 5)
        assert g.n == 15
        assert g.m == 3 * 4 + 2 * 5  # horizontal + vertical
        assert g.is_connected()

    def test_corner_degree(self):
        g = gen.grid(3, 3)
        assert g.degrees()[0] == 2  # corner

    def test_rejects_single_vertex(self):
        with pytest.raises(ValueError):
            gen.grid(1, 1)


class TestRandomGraph:
    def test_connected_and_sized(self):
        g = gen.random_graph(30, 60, rng=1)
        assert g.n == 30 and g.m == 60
        assert g.is_connected()

    def test_default_m(self):
        g = gen.random_graph(10, rng=1)
        assert g.m == 30

    def test_spanning_tree_only(self):
        g = gen.random_graph(15, 14, rng=2)
        assert g.m == 14 and g.is_connected()

    def test_dense_request(self):
        n = 10
        g = gen.random_graph(n, n * (n - 1) // 2, rng=3)
        assert g.m == n * (n - 1) // 2

    def test_rejects_too_few_edges(self):
        with pytest.raises(ValueError):
            gen.random_graph(10, 5)

    def test_rejects_too_many_edges(self):
        with pytest.raises(ValueError):
            gen.random_graph(4, 7)

    def test_no_duplicate_edges(self):
        g = gen.random_graph(20, 80, rng=4)
        key = np.minimum(g.edges[:, 0], g.edges[:, 1]) * g.n + np.maximum(
            g.edges[:, 0], g.edges[:, 1]
        )
        assert np.unique(key).size == key.size


class TestOtherFamilies:
    def test_star(self):
        g = gen.star(7)
        assert g.degrees()[0] == 6
        assert shortest_path_diameter(g) == 2

    def test_tree_is_tree(self):
        g = gen.weighted_tree(20, rng=0)
        assert g.m == 19 and g.is_connected()

    def test_complete(self):
        g = gen.complete_graph(6, rng=0)
        assert g.m == 15
        assert shortest_path_diameter(g) <= 5

    def test_random_regular(self):
        g = gen.random_regular(16, 4, rng=0)
        assert np.all(g.degrees() == 4)
        assert g.is_connected()

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            gen.random_regular(9, 3)

    def test_barbell(self):
        g = gen.barbell(4, bridge_len=3)
        assert g.is_connected()
        # two K4s plus bridge edges
        assert g.m == 2 * 6 + 3


class TestLowerBoundInstance:
    def test_structure(self):
        g, light = gen.lower_bound_instance(20, 40, rng=0)
        assert g.n == 20 and g.m == 40
        assert g.is_connected()

    def test_light_edge_flagging(self):
        seen_light = seen_none = False
        for seed in range(20):
            g, light = gen.lower_bound_instance(12, 30, rng=seed)
            if light is None:
                seen_none = True
            else:
                assert g.weights[light] == 1.0
                u, v = g.edges[light]
                assert (u < 6) != (v < 6)  # crosses the cut
                seen_light = True
        assert seen_light and seen_none  # both outcomes occur w.p. 1/2

    def test_heavy_weight_dominates(self):
        g, light = gen.lower_bound_instance(12, 30, rng=1)
        heavy = g.weights.max()
        assert heavy > 12 * np.log2(12)

    def test_rejects_odd_n(self):
        with pytest.raises(ValueError):
            gen.lower_bound_instance(7, 20)
