"""Tests for distance computations: exact, hop-limited, SPD, hop diameter."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.core import Graph
from repro.graph.shortest_paths import (
    dijkstra_distances,
    hop_diameter,
    hop_limited_distances,
    min_hop_of_shortest_path,
    shortest_path_diameter,
)
from tests.conftest import triangle_graph


def nx_distances(G: Graph) -> np.ndarray:
    out = np.full((G.n, G.n), np.inf)
    for s, dd in nx.all_pairs_dijkstra_path_length(G.to_networkx()):
        for t, d in dd.items():
            out[s, t] = d
    return out


class TestDijkstra:
    def test_matches_networkx(self, small_graphs):
        for g in small_graphs:
            D = dijkstra_distances(g)
            assert np.allclose(D, nx_distances(g))

    def test_single_source(self):
        g = triangle_graph()
        d = dijkstra_distances(g, [0])[0]
        assert d.tolist() == [0.0, 1.0, 3.0]  # 0-2 via 1 is cheaper than direct

    def test_subset_of_sources(self):
        g = gen.grid(3, 3, rng=0)
        D_all = dijkstra_distances(g)
        D_sub = dijkstra_distances(g, [2, 5])
        assert np.allclose(D_sub, D_all[[2, 5]])


class TestHopLimited:
    def test_zero_hops(self):
        g = triangle_graph()
        D = hop_limited_distances(g, 0)
        assert np.isinf(D[0, 1])
        assert D[0, 0] == 0.0

    def test_one_hop_is_adjacency(self):
        g = triangle_graph()
        D = hop_limited_distances(g, 1)
        assert D[0, 2] == 4.0  # direct edge only, no 2-hop path yet

    def test_two_hops_improves(self):
        g = triangle_graph()
        D = hop_limited_distances(g, 2)
        assert D[0, 2] == 3.0

    def test_monotone_in_h(self, small_graphs):
        for g in small_graphs:
            prev = hop_limited_distances(g, 0)
            for h in range(1, 4):
                cur = hop_limited_distances(g, h)
                assert np.all(cur <= prev + 1e-12)
                prev = cur

    def test_converges_to_exact(self, small_graphs):
        for g in small_graphs:
            D = hop_limited_distances(g, g.n)
            assert np.allclose(D, dijkstra_distances(g))

    def test_against_bellman_ford_path(self):
        # dist^h on a path: vertex i reachable from 0 only within i hops.
        g = gen.path_graph(6)
        for h in range(6):
            D = hop_limited_distances(g, h, [0])[0]
            for v in range(6):
                if v <= h:
                    assert D[v] == v
                else:
                    assert np.isinf(D[v])

    def test_sources_subset_and_block(self):
        g = gen.random_graph(20, 40, rng=3)
        full = hop_limited_distances(g, 3)
        sub = hop_limited_distances(g, 3, [4, 9, 17], block=2)
        assert np.allclose(sub, full[[4, 9, 17]])

    def test_negative_h_rejected(self):
        with pytest.raises(ValueError):
            hop_limited_distances(triangle_graph(), -1)


class TestSPD:
    def test_path(self):
        assert shortest_path_diameter(gen.path_graph(9)) == 8

    def test_cycle_even(self):
        assert shortest_path_diameter(gen.cycle(10)) == 5

    def test_star(self):
        assert shortest_path_diameter(gen.star(8)) == 2

    def test_single_vertex(self):
        g = Graph(1, np.empty((0, 2), dtype=np.int64), [])
        assert shortest_path_diameter(g) == 0

    def test_complete_unit_weights(self):
        g = gen.complete_graph(7, wmin=1, wmax=1, rng=0)
        assert shortest_path_diameter(g) == 1

    def test_disconnected_raises(self):
        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            shortest_path_diameter(g)

    def test_consistent_with_hop_limited(self, small_graphs):
        for g in small_graphs:
            spd = shortest_path_diameter(g)
            exact = dijkstra_distances(g)
            assert np.allclose(hop_limited_distances(g, spd), exact)
            if spd > 0:
                assert not np.allclose(hop_limited_distances(g, spd - 1), exact)

    def test_matches_min_hop_definition(self, small_graphs):
        # SPD = max over sources of max min-hop-of-shortest-path.
        for g in small_graphs:
            spd = shortest_path_diameter(g)
            hop_max = max(
                int(min_hop_of_shortest_path(g, s).max()) for s in range(g.n)
            )
            assert spd == hop_max

    def test_block_parameter(self):
        g = gen.cycle(13, rng=0)
        assert shortest_path_diameter(g, block=3) == shortest_path_diameter(g)


class TestHopDiameter:
    def test_path(self):
        assert hop_diameter(gen.path_graph(7)) == 6

    def test_weighted_cycle_ignores_weights(self):
        g = gen.cycle(8, wmin=0.1, wmax=9.0, rng=1)
        assert hop_diameter(g) == 4

    def test_star(self):
        assert hop_diameter(gen.star(9)) == 2

    def test_le_spd_possible(self):
        # D(G) <= SPD(G) always (hop diameter counts any path).
        for seed in range(3):
            g = gen.random_graph(15, 25, rng=seed)
            assert hop_diameter(g) <= shortest_path_diameter(g)

    def test_disconnected_raises(self):
        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            hop_diameter(g)


class TestMinHop:
    def test_triangle(self):
        g = triangle_graph()
        hops = min_hop_of_shortest_path(g, 0)
        assert hops.tolist() == [0, 1, 2]  # 0-2 shortest path goes via 1

    def test_tie_prefers_fewer_hops(self):
        # Two shortest 0-3 paths: direct (1 hop, weight 2) and via 1-2 (weight 2).
        g = Graph.from_edge_list(
            4, [(0, 3, 2.0), (0, 1, 1.0), (1, 2, 0.5), (2, 3, 0.5)]
        )
        hops = min_hop_of_shortest_path(g, 0)
        assert hops[3] == 1

    def test_unreachable_marked(self):
        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        hops = min_hop_of_shortest_path(g, 0)
        assert hops[2] == -1 and hops[3] == -1

    def test_source_zero(self):
        g = gen.grid(3, 3, rng=0)
        assert min_hop_of_shortest_path(g, 4)[4] == 0
