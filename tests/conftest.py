"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.core import Graph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_graphs() -> list[Graph]:
    """A diverse fixed set of small connected graphs."""
    r = np.random.default_rng(7)
    return [
        generators.path_graph(5, rng=r),
        generators.cycle(7, wmin=0.5, wmax=2.0, rng=r),
        generators.grid(3, 4, wmin=1.0, wmax=3.0, rng=r),
        generators.star(6, rng=r),
        generators.random_graph(12, 20, rng=r),
        generators.weighted_tree(9, rng=r),
        generators.complete_graph(6, rng=r),
    ]


def triangle_graph() -> Graph:
    """K3 with weights 1, 2, 4 — tiny hand-checkable instance."""
    return Graph.from_edge_list(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
