"""Per-rule positive/negative fixture tests plus engine mechanics.

Each rule in the catalogue has a seeded-violation fixture
(``tests/reprolint_fixtures/src/<rule>_bad.py``) and a clean twin
(``<rule>_good.py``).  The positive case must fire the rule at the
expected line(s); the negative twin must be *fully* clean — not just
quiet on its own rule — so fixtures double as cross-rule false-positive
probes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tools.reprolint import all_rules, analyze_file, analyze_paths
from tools.reprolint.engine import (
    apply_baseline,
    collect_files,
    load_baseline,
    write_baseline,
)

FIXTURE_ROOT = Path(__file__).parent / "reprolint_fixtures"

#: rule name -> expected finding lines in its _bad fixture
EXPECTED_BAD_LINES = {
    "rng-source": [9],
    "rng-param-draw": [7, 10],
    "fixpoint-cap": [7],
    "quadratic-transient": [9, 14, 18],
    "float-distance-eq": [7],
    "engine-declares-families": [9],
    "public-api-all": [3, 6],
    "mutable-default-arg": [6],
    "bare-except": [9],
    # PR 7 flow-aware rules (dataflow / shapes / project infrastructure).
    "quadratic-transient-flow": [10, 15, 20],
    "shape-contract": [9, 14, 21, 29],
    "dtype-discipline": [9, 14, 18],
    "rng-stream-flow": [9, 13, 19],
    # PR 9 ownership rules (interprocedural mutation/escape analysis).
    "view-mutation": [8, 14],
    "frozen-param-mutation": [9],
    "cache-aliasing": [11, 14],
    "escape-undeclared": [11],
}

RULE_NAMES = sorted(EXPECTED_BAD_LINES)


def _fixture(name: str) -> Path:
    return FIXTURE_ROOT / "src" / name


def _analyze(name: str):
    findings, ctx = analyze_file(_fixture(name), root=FIXTURE_ROOT)
    assert ctx is not None, f"{name} failed to parse"
    return findings


def test_catalogue_matches_fixture_table():
    assert sorted(r.name for r in all_rules()) == RULE_NAMES


@pytest.mark.parametrize("rule", RULE_NAMES)
def test_rule_fires_on_bad_fixture(rule):
    fname = rule.replace("-", "_") + "_bad.py"
    findings = _analyze(fname)
    lines = [f.line for f in findings if f.rule == rule]
    assert lines == EXPECTED_BAD_LINES[rule]


@pytest.mark.parametrize("rule", RULE_NAMES)
def test_clean_twin_is_fully_clean(rule):
    fname = rule.replace("-", "_") + "_good.py"
    assert _analyze(fname) == []


def test_view_mutation_catches_aliased_writes_prior_rules_miss():
    """Acceptance: the seeded writes evade every PR 6/PR 7 rule.

    ``view_mutation_bad.py`` reaches borrowed storage only through
    aliases (``tail = values[1:]``, ``t = forest.tree(0)``), so none of
    the syntactic or shape/dtype rules have anything to say — only the
    ownership analysis connects the write line to the borrow.
    """
    findings = _analyze("view_mutation_bad.py")
    assert {f.rule for f in findings} == {"view-mutation"}
    assert [f.line for f in findings] == EXPECTED_BAD_LINES["view-mutation"]


def test_flow_rule_catches_aliases_the_syntactic_rule_misses():
    """Acceptance: every seeded alias in the flow fixture evades PR 6's rule.

    ``quadratic_transient_flow_bad.py`` reaches the quadratic idioms only
    through value aliases (``m = n``, ``tri = np.triu_indices``,
    ``draw = g.choice``), so the purely syntactic ``quadratic-transient``
    rule must stay silent while the dataflow-backed rule flags all three.
    """
    findings = _analyze("quadratic_transient_flow_bad.py")
    assert [f.line for f in findings if f.rule == "quadratic-transient"] == []
    assert [f.line for f in findings if f.rule == "quadratic-transient-flow"] == (
        EXPECTED_BAD_LINES["quadratic-transient-flow"]
    )


# -- suppression mechanics -----------------------------------------------------


def test_suppression_with_reason_silences_trailing_and_standalone():
    assert _analyze("suppress_with_reason.py") == []


def test_suppression_without_reason_does_not_suppress():
    findings = _analyze("suppress_no_reason.py")
    rules = sorted(f.rule for f in findings)
    assert rules == ["bad-suppression", "quadratic-transient"]


def test_unused_suppression_is_reported():
    findings = _analyze("suppress_unused.py")
    assert [f.rule for f in findings] == ["unused-suppression"]


def test_unknown_rule_in_disable_is_reported():
    findings = _analyze("suppress_unknown_rule.py")
    assert "bad-suppression" in {f.rule for f in findings}


# -- engine mechanics ----------------------------------------------------------


def test_parse_error_is_a_finding(tmp_path):
    bad = tmp_path / "src" / "broken.py"
    bad.parent.mkdir()
    bad.write_text("def oops(:\n")
    findings, ctx = analyze_file(bad, root=tmp_path)
    assert ctx is None
    assert [f.rule for f in findings] == ["parse-error"]


def test_collect_files_skips_fixture_and_cache_dirs(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "reprolint_fixtures").mkdir()
    (tmp_path / "pkg" / "reprolint_fixtures" / "bad.py").write_text("x = 1\n")
    files = collect_files([tmp_path])
    assert [f.name for f in files] == ["mod.py"]
    # Explicit file arguments bypass the directory skip list.
    direct = collect_files([tmp_path / "pkg" / "reprolint_fixtures" / "bad.py"])
    assert len(direct) == 1


def test_baseline_round_trip(tmp_path):
    """write_baseline -> load_baseline -> apply drops exactly those findings."""
    findings, ctx = analyze_file(
        _fixture("quadratic_transient_bad.py"), root=FIXTURE_ROOT
    )
    assert findings
    bl = tmp_path / "baseline.json"
    write_baseline(findings, {ctx.path: ctx}, bl)
    budget = load_baseline(bl)
    assert apply_baseline(findings, ctx, budget) == []
    # A fresh finding on an unbaselined line survives.
    fresh_budget = load_baseline(bl)
    fresh_budget.pop(next(iter(fresh_budget)))
    assert len(apply_baseline(findings, ctx, fresh_budget)) >= 1


def test_baseline_is_line_drift_tolerant(tmp_path):
    """Entries key on stripped line text, not line numbers."""
    src = tmp_path / "src"
    src.mkdir()
    mod = src / "m.py"
    code = (
        '"""Doc."""\n\nimport numpy as np\n\n__all__ = ["f"]\n\n\n'
        "def f(n):\n    return np.triu_indices(n)\n"
    )
    mod.write_text(code)
    findings, ctx = analyze_file(mod, root=tmp_path)
    bl = tmp_path / "baseline.json"
    write_baseline(findings, {ctx.path: ctx}, bl)
    # Shift every line down by three: the baseline must still match.
    mod.write_text('"""Doc."""\n# pad\n# pad\n# pad\n' + code.split("\n", 1)[1])
    shifted, ctx2 = analyze_file(mod, root=tmp_path)
    assert shifted and shifted[0].line != findings[0].line
    assert apply_baseline(shifted, ctx2, load_baseline(bl)) == []


def test_checked_in_baseline_is_empty():
    """Policy: violations are fixed or suppressed with reasons, not banked."""
    repo_baseline = (
        Path(__file__).parent.parent / "tools" / "reprolint" / "baseline.json"
    )
    assert load_baseline(repo_baseline) == {}


def test_suppression_above_decorator_covers_the_def(tmp_path):
    """A standalone disable above a decorated def governs the def itself."""
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    mod = src_dir / "m.py"
    mod.write_text(
        '"""Doc."""\n\nimport functools\n\n__all__ = ["f"]\n\n\n'
        "# reprolint: disable=mutable-default-arg (fixture: cache key frozen)\n"
        "@functools.lru_cache(maxsize=None)\n"
        "def f(xs=[]):\n"
        "    return xs\n"
    )
    findings, _ = analyze_file(mod, root=tmp_path)
    assert findings == []


def test_suppression_on_continuation_line_covers_statement(tmp_path):
    """A trailing disable on a closing-paren line governs the whole call."""
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    mod = src_dir / "m.py"
    mod.write_text(
        '"""Doc."""\n\nimport numpy as np\n\n__all__ = ["g"]\n\n\n'
        "def g(n):\n"
        "    return np.zeros(\n"
        "        (n, n)\n"
        "    )  # reprolint: disable=quadratic-transient (fixture: output-sized)\n"
    )
    findings, _ = analyze_file(mod, root=tmp_path)
    assert findings == []


def test_baseline_budget_counts_duplicate_line_texts(tmp_path):
    """Identical stripped line texts consume one budget entry per hit."""
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    mod = src_dir / "m.py"
    def header(names: list[str]) -> str:
        return f'"""Doc."""\n\nimport numpy as np\n\n__all__ = {names!r}\n'

    def viol(name: str) -> str:
        return f"\n\ndef {name}(n):\n    return np.triu_indices(n)\n"

    mod.write_text(header(["a", "b"]) + viol("a") + viol("b"))
    findings, ctx = analyze_file(mod, root=tmp_path)
    assert [f.rule for f in findings] == ["quadratic-transient"] * 2
    bl = tmp_path / "baseline.json"
    write_baseline(findings, {ctx.path: ctx}, bl)
    budget = load_baseline(bl)
    assert list(budget.values()) == [2]  # one key, count two
    assert apply_baseline(findings, ctx, budget) == []
    # A third identical line exceeds the grandfathered budget and survives.
    mod.write_text(header(["a", "b", "c"]) + viol("a") + viol("b") + viol("c"))
    findings3, ctx3 = analyze_file(mod, root=tmp_path)
    assert len(apply_baseline(findings3, ctx3, load_baseline(bl))) == 1


def test_bom_and_crlf_sources_are_handled(tmp_path):
    """UTF-8-BOM + CRLF files parse and report correct line numbers."""
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    mod = src_dir / "m.py"
    text = (
        '"""Doc."""\r\n\r\nimport numpy as np\r\n\r\n__all__ = ["f"]\r\n'
        "\r\n\r\ndef f(n):\r\n    return np.zeros((n, n))\r\n"
    )
    mod.write_bytes(b"\xef\xbb\xbf" + text.encode("utf-8"))
    findings, ctx = analyze_file(mod, root=tmp_path)
    assert ctx is not None
    assert [(f.rule, f.line) for f in findings] == [("quadratic-transient", 9)]


def test_analyze_paths_applies_baseline(tmp_path):
    findings, ctxs = analyze_paths([FIXTURE_ROOT / "src"], root=FIXTURE_ROOT)
    assert findings  # the fixture tree is intentionally dirty
    bl = tmp_path / "baseline.json"
    write_baseline(findings, ctxs, bl)
    remaining, _ = analyze_paths(
        [FIXTURE_ROOT / "src"], root=FIXTURE_ROOT, baseline=load_baseline(bl)
    )
    assert remaining == []


# -- CLI -----------------------------------------------------------------------


def test_cli_exit_codes_and_summary(tmp_path, capsys, monkeypatch):
    from tools.reprolint.__main__ import main

    # Scopes key on the top path segment, so run from the fixture root
    # (exactly how CI runs from the repo root).
    monkeypatch.chdir(FIXTURE_ROOT)
    summary = tmp_path / "summary.md"
    assert main(["src/rng_source_bad.py", "--summary", str(summary)]) == 1
    assert "rng-source" in capsys.readouterr().out
    assert "rng-source" in summary.read_text()
    assert main(["src/rng_source_good.py"]) == 0
    assert main(["--list-rules"]) == 0
    assert "quadratic-transient" in capsys.readouterr().out


def test_cli_write_baseline(tmp_path, monkeypatch):
    from tools.reprolint.__main__ import main

    monkeypatch.chdir(FIXTURE_ROOT)
    bl = tmp_path / "bl.json"
    dirty = "src/bare_except_bad.py"
    assert main([dirty, "--write-baseline", "--baseline", str(bl)]) == 0
    assert main([dirty, "--baseline", str(bl), "-q"]) == 0
    assert main([dirty, "--baseline", str(bl), "--no-baseline", "-q"]) == 1


def test_cli_github_format_emits_error_annotations(capsys, monkeypatch):
    from tools.reprolint.__main__ import main

    monkeypatch.chdir(FIXTURE_ROOT)
    assert main(["src/rng_source_bad.py", "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=src/rng_source_bad.py,line=9,col=" in out
    assert "title=reprolint(rng-source)::" in out


def test_render_github_escapes_message_payload():
    from tools.reprolint.__main__ import render_github
    from tools.reprolint.engine import Finding

    f = Finding("src/x.py", 3, 2, "rng-source", "50% worse\nsecond line")
    line = render_github(f)
    assert line.startswith(
        "::error file=src/x.py,line=3,col=2,title=reprolint(rng-source)::"
    )
    assert "%25" in line and "%0A" in line and "\n" not in line


def test_list_rules_has_no_blank_invariant_bullets():
    from tools.reprolint.__main__ import _list_rules

    text = _list_rules()
    for line in text.splitlines():
        assert line.strip() not in ("|", "| ."), f"stray bullet: {line!r}"
    for rule in RULE_NAMES:
        assert f"  {rule}: " in text
