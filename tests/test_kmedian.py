"""Tests for the k-median pipeline (Section 9)."""

import itertools

import numpy as np
import pytest

from repro.apps.kmedian import (
    hst_kmedian_dp,
    kmedian,
    kmedian_cost,
    kmedian_greedy,
    kmedian_random,
    successive_sampling,
)
from repro.frt import sample_frt_tree
from repro.graph import generators as gen
from repro.graph.shortest_paths import dijkstra_distances


def brute_force_kmedian(G, k):
    """Exact optimum by enumeration (tiny n only)."""
    best = (np.inf, None)
    D = dijkstra_distances(G)
    for subset in itertools.combinations(range(G.n), k):
        cost = D[list(subset)].min(axis=0).sum()
        if cost < best[0]:
            best = (cost, np.array(subset))
    return best


class TestKMedianCost:
    def test_single_facility_star(self):
        g = gen.star(6)
        assert kmedian_cost(g, np.array([0])) == 5.0  # center serves all

    def test_all_facilities_zero(self):
        g = gen.cycle(8, rng=0)
        assert kmedian_cost(g, np.arange(8)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmedian_cost(gen.cycle(5), np.array([], dtype=np.int64))


class TestSuccessiveSampling:
    def test_size_bound(self):
        g = gen.random_graph(200, 500, rng=0)
        Q = successive_sampling(g, 4, rng=1)
        assert Q.size <= 8 * 4 * np.log2(200 / 4) + 40
        assert Q.size >= 4

    def test_candidates_valid(self):
        g = gen.grid(8, 8, rng=1)
        Q = successive_sampling(g, 3, rng=2)
        assert np.all((0 <= Q) & (Q < g.n))
        assert np.unique(Q).size == Q.size

    def test_candidates_contain_good_solution(self):
        # O(1)-approx promise, checked loosely against the true optimum.
        g = gen.random_graph(30, 80, rng=3)
        k = 3
        opt_cost, _ = brute_force_kmedian(g, k)
        ratios = []
        for seed in range(5):
            Q = successive_sampling(g, k, rng=seed)
            best = np.inf
            D = dijkstra_distances(g, Q)
            # greedy over candidates as a cheap evaluator of Q's quality
            cur = np.full(g.n, np.inf)
            for _ in range(k):
                totals = np.minimum(cur[None, :], D).sum(axis=1)
                f = int(np.argmin(totals))
                cur = np.minimum(cur, D[f])
            ratios.append(cur.sum() / opt_cost)
        assert np.mean(ratios) <= 4.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            successive_sampling(gen.cycle(5), 0)


class TestHSTDP:
    def _tree_and_weights(self, n=10, seed=0):
        g = gen.random_graph(n, 2 * n, rng=seed)
        emb = sample_frt_tree(g, rng=seed + 1)
        w = np.random.default_rng(seed).uniform(0.0, 3.0, n)
        return emb.tree, w

    def brute_force_on_tree(self, tree, weights, k, allowed=None):
        n = tree.n
        cand = range(n) if allowed is None else np.flatnonzero(allowed)
        best = (np.inf, None)
        M = tree.distance_matrix()
        for j in range(1, k + 1):
            for subset in itertools.combinations(cand, j):
                cost = float((M[:, list(subset)].min(axis=1) * weights).sum())
                if cost < best[0]:
                    best = (cost, subset)
        return best

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_optimal_vs_bruteforce(self, k):
        tree, w = self._tree_and_weights(n=9, seed=4)
        want_cost, _ = self.brute_force_on_tree(tree, w, k)
        got_cost, fac = hst_kmedian_dp(tree, w, k)
        assert got_cost == pytest.approx(want_cost)
        # facilities actually realize the claimed cost
        M = tree.distance_matrix()
        realized = float((M[:, fac].min(axis=1) * w).sum())
        assert realized == pytest.approx(got_cost)
        assert 1 <= fac.size <= k

    def test_restricted_facilities(self):
        tree, w = self._tree_and_weights(n=8, seed=5)
        allowed = np.zeros(8, dtype=bool)
        allowed[[0, 3, 6]] = True
        want_cost, _ = self.brute_force_on_tree(tree, w, 2, allowed)
        got_cost, fac = hst_kmedian_dp(tree, w, 2, allowed=allowed)
        assert got_cost == pytest.approx(want_cost)
        assert set(fac).issubset({0, 3, 6})

    def test_k_covers_everything(self):
        tree, w = self._tree_and_weights(n=7, seed=6)
        cost, fac = hst_kmedian_dp(tree, w, 7)
        positive = np.flatnonzero(w > 0)
        assert cost == pytest.approx(0.0)
        assert set(positive).issubset(set(fac))

    def test_zero_weights_ignored(self):
        tree, _ = self._tree_and_weights(n=6, seed=7)
        w = np.zeros(6)
        cost, _ = hst_kmedian_dp(tree, w, 1)
        assert cost == 0.0

    def test_validation(self):
        tree, w = self._tree_and_weights(n=6, seed=8)
        with pytest.raises(ValueError):
            hst_kmedian_dp(tree, w[:3], 1)
        with pytest.raises(ValueError):
            hst_kmedian_dp(tree, w, 0)
        with pytest.raises(ValueError):
            hst_kmedian_dp(tree, w, 1, allowed=np.zeros(6, dtype=bool))

    # -- edge cases that anchor the batched-forest parity suite ------------

    def test_all_disallowed_but_one(self):
        tree, w = self._tree_and_weights(n=9, seed=20)
        only = 4
        allowed = np.zeros(9, dtype=bool)
        allowed[only] = True
        for k in (1, 3):
            cost, fac = hst_kmedian_dp(tree, w, k, allowed=allowed)
            assert np.array_equal(fac, [only])
            M = tree.distance_matrix()
            assert cost == pytest.approx(float((M[:, only] * w).sum()))

    def test_zero_weight_clients_do_not_pay(self):
        tree, w = self._tree_and_weights(n=8, seed=21)
        w[[1, 5, 6]] = 0.0
        cost, fac = hst_kmedian_dp(tree, w, 2)
        M = tree.distance_matrix()
        realized = float((M[:, fac].min(axis=1) * w).sum())
        assert cost == pytest.approx(realized)
        want_cost, _ = self.brute_force_on_tree(tree, w, 2)
        assert cost == pytest.approx(want_cost)

    def test_k_at_least_allowed_leaves(self):
        # More facilities than allowed sites: the DP opens every allowed
        # site whose subtree carries weight; cost equals the 2-site optimum.
        tree, w = self._tree_and_weights(n=8, seed=22)
        allowed = np.zeros(8, dtype=bool)
        allowed[[2, 7]] = True
        cost, fac = hst_kmedian_dp(tree, w, 5, allowed=allowed)
        assert set(fac).issubset({2, 7})
        want_cost, _ = self.brute_force_on_tree(tree, w, 2, allowed)
        assert cost == pytest.approx(want_cost)

    def test_single_vertex_graph(self):
        from repro.frt import build_frt_tree
        from repro.frt.lelists import compute_le_lists_batch
        from repro.graph.core import Graph

        g = Graph.from_edge_list(1, [])
        ranks = np.zeros((1, 1), dtype=np.int64)
        lists, _ = compute_le_lists_batch(g, ranks)
        tree = build_frt_tree(
            lists.sample_states(0), ranks[0], 1.5, g.weight_bounds()[0]
        )
        cost, fac = hst_kmedian_dp(tree, np.array([3.0]), 1)
        assert cost == 0.0
        assert np.array_equal(fac, [0])


class TestKMedianPipeline:
    def test_approximation_vs_optimum(self):
        g = gen.random_graph(24, 60, rng=9)
        k = 3
        opt_cost, _ = brute_force_kmedian(g, k)
        res = kmedian(g, k, trees=4, rng=10)
        assert res.facilities.size <= k
        assert res.cost == pytest.approx(kmedian_cost(g, res.facilities))
        # Expected O(log k); on these sizes a small constant is typical.
        assert res.cost <= 3.0 * opt_cost

    def test_beats_random_baseline_on_average(self):
        g = gen.grid(6, 6, rng=11)
        k = 4
        ours, rand = [], []
        for seed in range(5):
            ours.append(kmedian(g, k, trees=3, rng=seed).cost)
            rand.append(kmedian_random(g, k, rng=seed).cost)
        assert np.mean(ours) <= np.mean(rand)

    def test_comparable_to_greedy(self):
        g = gen.random_graph(40, 100, rng=12)
        k = 5
        greedy = kmedian_greedy(g, k)
        res = kmedian(g, k, trees=5, rng=13)
        assert res.cost <= 2.0 * greedy.cost

    def test_explicit_candidates(self):
        g = gen.cycle(20, rng=14)
        Q = np.arange(0, 20, 2)
        res = kmedian(g, 2, candidates=Q, rng=15)
        assert set(res.facilities).issubset(set(Q.tolist()))

    def test_candidates_fewer_than_k(self):
        g = gen.cycle(10, rng=16)
        res = kmedian(g, 5, candidates=np.array([1, 2]), rng=17)
        assert np.array_equal(res.facilities, [1, 2])

    def test_barbell_picks_both_sides(self):
        g = gen.barbell(6, bridge_len=8)
        res = kmedian(g, 2, trees=5, rng=18)
        left = set(range(6))
        right = set(range(6, 12))
        fac = set(res.facilities.tolist())
        assert fac & left and fac & right

    def test_validation(self):
        with pytest.raises(ValueError):
            kmedian(gen.cycle(5), 0)
        from repro.graph.core import Graph

        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            kmedian(g, 1)


class TestCliqueConstructionMemory:
    """The candidate clique is built via exact triangular unranking.

    ``np.triu_indices`` materializes an (m, m) boolean mask (plus its
    inversion) on top of the O(m²)-entries output; the unranking path's
    transient scratch must stay bounded by the block size regardless of m.
    """

    def test_clique_edges_peak_memory(self):
        import tracemalloc

        from repro.frt.stretch import all_pairs

        m = 3000  # total = 4_498_500 pairs; output = 2 * total * 8 bytes
        total = m * (m - 1) // 2
        output_bytes = 2 * total * 8
        tracemalloc.start()
        try:
            iu, ju = all_pairs(m)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert iu.size == ju.size == total
        # Transient overhead beyond the returned arrays stays at the
        # (constant) unranking block scratch — far below the ~9 MB mask
        # pair triu_indices would add at this size, and flat in m.
        assert peak - output_bytes < 48 * (1 << 20), (peak, output_bytes)

    def test_clique_edges_match_triu(self):
        from repro.frt.stretch import all_pairs

        for m in (2, 3, 17, 64):
            iu, ju = all_pairs(m)
            wi, wj = np.triu_indices(m, k=1)
            assert np.array_equal(iu, wi)
            assert np.array_equal(ju, wj)


class TestOracleBackedSampling:
    """Section 9 as written: distance queries answered on H via the oracle."""

    def _oracle(self, g, seed):
        from repro.hopsets import hub_hopset, rounded_hopset
        from repro.oracle import HOracle

        hop = rounded_hopset(hub_hopset(g, d0=4, rng=seed), g, 0.2)
        return HOracle(hop, rng=seed + 1)

    def test_distance_to_set_dominates_and_approximates(self):
        from repro.apps.kmedian import distance_to_set_via_oracle

        g = gen.cycle(24, wmin=1, wmax=2, rng=30)
        oracle = self._oracle(g, 31)
        S = np.array([0, 8, 16])
        got = distance_to_set_via_oracle(oracle, S)
        want = dijkstra_distances(g, S).min(axis=0)
        bound = oracle.penalty_base ** (oracle.Lambda + 1)
        assert np.all(got >= want - 1e-9)
        assert np.all(got <= bound * want + 1e-9)
        assert np.all(got[S] == 0.0)

    def test_sampling_with_oracle_produces_valid_candidates(self):
        from repro.apps.kmedian import successive_sampling

        g = gen.random_graph(40, 100, rng=32)
        oracle = self._oracle(g, 33)
        Q = successive_sampling(g, 3, rng=34, oracle=oracle)
        assert np.unique(Q).size == Q.size
        assert np.all((0 <= Q) & (Q < g.n))
        assert Q.size >= 3

    def test_full_pipeline_with_oracle_quality(self):
        g = gen.random_graph(24, 60, rng=35)
        oracle = self._oracle(g, 36)
        k = 3
        opt_cost, _ = brute_force_kmedian(g, k)
        res = kmedian(g, k, trees=4, rng=37, oracle=oracle)
        assert res.cost <= 3.0 * opt_cost
