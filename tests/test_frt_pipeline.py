"""End-to-end tests for the oracle-based FRT pipeline (Theorem 7.9) and
Section 7.5 path reconstruction."""

import numpy as np
import pytest

from repro.frt import (
    evaluate_stretch,
    sample_frt_tree,
    sample_frt_tree_via_oracle,
    tree_edge_to_graph_path,
)
from repro.frt.paths import PathOracle, reconstruct_graph_path
from repro.graph import generators as gen
from repro.graph.shortest_paths import dijkstra_distances, shortest_path_diameter
from repro.hopsets import hub_hopset, rounded_hopset
from repro.oracle import HOracle
from repro.pram import CostLedger


class TestOraclePipeline:
    def test_dominates_g(self):
        g = gen.cycle(24, wmin=1, wmax=2, rng=0)
        DG = dijkstra_distances(g)
        for seed in range(3):
            res = sample_frt_tree_via_oracle(g, eps=0.25, d0=4, rng=seed)
            MT = res.tree.distance_matrix()
            assert np.all(MT >= DG - 1e-9)

    def test_iterations_polylog_not_spd(self):
        # The headline: on a high-SPD cycle the oracle pipeline needs far
        # fewer outer iterations than SPD(G).
        g = gen.cycle(64, rng=1)
        spd = shortest_path_diameter(g)  # 32
        res = sample_frt_tree_via_oracle(g, eps=0.25, d0=6, rng=2)
        assert res.iterations < spd / 2
        assert res.iterations <= int(np.log2(g.n) ** 2)

    def test_stretch_order_log_n(self):
        # The paper takes eps ∈ 1/polylog(n) so the (1+eps)^Λ distortion is
        # 1 + o(1); mirror that regime here.
        g = gen.cycle(32, rng=3)
        eps = 1.0 / np.log2(g.n) ** 2
        hopset = rounded_hopset(hub_hopset(g, d0=5, rng=4), g, eps)
        oracle = HOracle(hopset, rng=5)
        shared = np.random.default_rng(7)
        report = evaluate_stretch(
            g,
            lambda: sample_frt_tree_via_oracle(g, oracle=oracle, rng=shared).tree,
            trees=16,
            rng=6,
        )
        assert report.dominating
        assert report.max_expected_stretch <= 14 * np.log2(g.n)
        assert report.mean_stretch <= 5 * np.log2(g.n)

    def test_oracle_reuse_across_samples(self):
        g = gen.grid(5, 5, rng=7)
        hopset = rounded_hopset(hub_hopset(g, d0=4, rng=8), g, 0.25)
        oracle = HOracle(hopset, rng=9)
        a = sample_frt_tree_via_oracle(g, oracle=oracle, rng=1)
        b = sample_frt_tree_via_oracle(g, oracle=oracle, rng=2)
        assert a.beta != b.beta  # fresh FRT randomness
        assert a.meta["Lambda"] == b.meta["Lambda"]  # shared H

    def test_meta_populated(self):
        g = gen.cycle(16, rng=0)
        res = sample_frt_tree_via_oracle(g, eps=0.5, d0=3, rng=1)
        assert res.meta["pipeline"] == "oracle"
        assert res.meta["hop_d"] == 7
        assert res.meta["penalty_base"] == pytest.approx(1.5)

    def test_ledger_records_costs(self):
        g = gen.cycle(16, rng=0)
        ledger = CostLedger()
        sample_frt_tree_via_oracle(g, eps=0.25, d0=3, rng=1, ledger=ledger)
        assert ledger.work > 0 and ledger.depth > 0

    def test_eps_zero_uses_exact_hopset(self):
        g = gen.cycle(16, rng=0)
        res = sample_frt_tree_via_oracle(g, eps=0.0, d0=3, rng=1)
        assert res.meta["penalty_base"] == 1.0
        # Exact hop set ⇒ H is the metric ⇒ fixpoint in one iteration.
        assert res.iterations == 1


class TestExplicitRandomnessConsumesNoState:
    """Regression: explicitly supplied ``rank``/``beta`` must not draw from
    the RNG — the old code always drew both and discarded the overrides,
    silently shifting the caller's downstream random stream."""

    def _state(self, rng):
        return rng.bit_generator.state

    def test_both_explicit_leaves_rng_untouched(self):
        g = gen.cycle(10, rng=0)
        rank = np.arange(10, dtype=np.int64)
        rng = np.random.default_rng(123)
        sample_frt_tree(g, rng=rng, rank=rank, beta=1.5)
        assert self._state(rng) == self._state(np.random.default_rng(123))

    def test_both_explicit_via_oracle_leaves_rng_untouched(self):
        g = gen.cycle(10, rng=0)
        oracle = HOracle(rounded_hopset(hub_hopset(g, d0=3, rng=1), g, 0.25), rng=2)
        rank = np.arange(10, dtype=np.int64)
        rng = np.random.default_rng(123)
        sample_frt_tree_via_oracle(g, oracle=oracle, rng=rng, rank=rank, beta=1.5)
        assert self._state(rng) == self._state(np.random.default_rng(123))

    def test_explicit_rank_draws_only_beta(self):
        g = gen.cycle(10, rng=0)
        rank = np.arange(10, dtype=np.int64)
        rng = np.random.default_rng(7)
        res = sample_frt_tree(g, rng=rng, rank=rank)
        expect = np.random.default_rng(7)
        assert res.beta == float(expect.uniform(1.0, 2.0))
        assert self._state(rng) == self._state(expect)

    def test_explicit_beta_draws_only_rank(self):
        g = gen.cycle(10, rng=0)
        rng = np.random.default_rng(7)
        res = sample_frt_tree(g, rng=rng, beta=1.25)
        expect = np.random.default_rng(7)
        perm = expect.permutation(10)
        want = np.empty(10, dtype=np.int64)
        want[perm] = np.arange(10)
        assert res.beta == 1.25
        assert np.array_equal(res.rank, want)
        assert self._state(rng) == self._state(expect)

    def test_default_draw_order_unchanged(self):
        """No overrides: permutation then beta, as before the fix."""
        g = gen.cycle(10, rng=0)
        res = sample_frt_tree(g, rng=99)
        expect = np.random.default_rng(99)
        perm = expect.permutation(10)
        want = np.empty(10, dtype=np.int64)
        want[perm] = np.arange(10)
        assert np.array_equal(res.rank, want)
        assert res.beta == float(expect.uniform(1.0, 2.0))


class TestPathReconstruction:
    def test_reconstruct_shortest_path(self):
        g = gen.grid(4, 5, rng=0)
        oracle = PathOracle(g)
        D = dijkstra_distances(g)
        for u, v in [(0, 19), (3, 12), (7, 7)]:
            p = oracle.path(u, v)
            assert p[0] == u and p[-1] == v
            assert oracle.path_weight(p) == pytest.approx(D[u, v])

    def test_path_edges_exist(self):
        g = gen.random_graph(15, 30, rng=1)
        p = reconstruct_graph_path(g, 0, 14)
        for a, b in zip(p[:-1], p[1:]):
            assert g.has_edge(a, b)

    def test_disconnected_raises(self):
        from repro.graph.core import Graph

        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            reconstruct_graph_path(g, 0, 3)

    def test_tree_edge_maps_to_bounded_path(self):
        g = gen.grid(4, 4, rng=2)
        res = sample_frt_tree(g, rng=3)
        tree = res.tree
        oracle = PathOracle(g)
        for child in range(tree.num_nodes):
            if tree.parent[child] < 0:
                continue
            p = tree_edge_to_graph_path(tree, child, g, oracle)
            lvl = int(tree.node_level[child])
            w = oracle.path_weight(p)
            # Section 7.5 bound: ≤ r_i + r_{i+1} = 1.5 ω_T(e).
            assert w <= tree.radii[lvl] + tree.radii[lvl + 1] + 1e-9
            assert p[0] == tree.node_leading[child]
            assert p[-1] == tree.node_leading[tree.parent[child]]

    def test_root_edge_rejected(self):
        g = gen.cycle(8, rng=0)
        res = sample_frt_tree(g, rng=1)
        with pytest.raises(ValueError):
            tree_edge_to_graph_path(res.tree, res.tree.root, g)

    def test_leaf_to_root_concatenation_connects(self):
        # Concatenating per-edge paths up the tree yields a valid G-walk
        # from any vertex's vicinity to the root's leading vertex.
        g = gen.cycle(12, rng=4)
        res = sample_frt_tree(g, rng=5)
        tree = res.tree
        oracle = PathOracle(g)
        node = tree.leaf_of(5)
        walk = [int(tree.node_leading[node])]
        while tree.parent[node] >= 0:
            seg = tree_edge_to_graph_path(tree, node, g, oracle)
            assert seg[0] == walk[-1]
            walk.extend(seg[1:])
            node = int(tree.parent[node])
        assert walk[-1] == tree.node_leading[tree.root]


class TestPipelineConstructorVariants:
    def test_prebuilt_hopset_path(self):
        from repro.hopsets import hub_hopset

        g = gen.cycle(16, rng=0)
        hop = hub_hopset(g, d0=3, rng=1)
        res = sample_frt_tree_via_oracle(g, hopset=hop, rng=2)
        D = dijkstra_distances(g)
        assert np.all(res.tree.distance_matrix() >= D - 1e-9)

    def test_disconnected_rejected(self):
        from repro.graph.core import Graph

        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        import pytest as _pytest

        with _pytest.raises(ValueError):
            sample_frt_tree_via_oracle(g)

    def test_empty_source_set_rejected_in_oracle_query(self):
        from repro.apps.kmedian import distance_to_set_via_oracle
        from repro.hopsets import hub_hopset
        from repro.oracle import HOracle

        g = gen.cycle(12, rng=3)
        oracle = HOracle(hub_hopset(g, d0=3, rng=4), rng=5)
        with pytest.raises(ValueError):
            distance_to_set_via_oracle(oracle, np.array([], dtype=np.int64))
