"""The repo-wide reprolint gate: every tracked file is clean per rule.

Parametrized as one test case per (file, rule) pair so a violation
pinpoints exactly which invariant broke where, instead of one opaque
repo-level failure.  Files are analyzed once and cached; the fan-out is
assertion-only.

This mirrors CI's ``python -m tools.reprolint src tests benchmarks
examples tools`` step (which additionally applies the checked-in
baseline — kept empty, see ``test_checked_in_baseline_is_empty``).
Analysis runs in project mode, exactly like CI: cross-module rules
(shape-contract call sites, dtype conflicts) are part of the gate.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

import pytest

from tools.reprolint import all_rules, analyze_file
from tools.reprolint.callgraph import Project
from tools.reprolint.engine import META_RULES, collect_files

REPO_ROOT = Path(__file__).parent.parent
SCAN_ROOTS = ["src", "tests", "benchmarks", "examples", "tools"]

FILES = [
    f.relative_to(REPO_ROOT).as_posix()
    for f in collect_files([REPO_ROOT / r for r in SCAN_ROOTS])
]
RULE_NAMES = sorted(r.name for r in all_rules()) + list(META_RULES)


@lru_cache(maxsize=None)
def _project() -> Project | None:
    return Project.discover(REPO_ROOT)


@lru_cache(maxsize=None)
def _findings_by_rule(rel: str) -> dict[str, list[str]]:
    findings, _ = analyze_file(REPO_ROOT / rel, root=REPO_ROOT, project=_project())
    out: dict[str, list[str]] = {}
    for f in findings:
        out.setdefault(f.rule, []).append(f.render())
    return out


def test_scan_roots_nonempty():
    assert len(FILES) > 50, "walker found suspiciously few files"


@pytest.mark.parametrize("rule", RULE_NAMES)
@pytest.mark.parametrize("rel", FILES)
def test_file_clean_for_rule(rel, rule):
    hits = _findings_by_rule(rel).get(rule)
    assert not hits, "\n".join(hits or [])
