"""Parity suite for the forest-backed application layer (repro.apps.batched).

The contract under test: :func:`hst_kmedian_dp_forest` and
:func:`route_demands_on_forest` are *bit-identical* per sample — DP costs,
facility ids, and per-node flows included — to the serial references
:func:`~repro.apps.kmedian.hst_kmedian_dp` and
:func:`~repro.apps.buyatbulk.route_demands_on_tree` run tree by tree, on
every edge case the serial DP handles (k = 1, non-power-of-two k, ragged
ensemble depths, weighted clients, disallowed facilities, single-vertex
graphs).
"""

import numpy as np
import pytest

from repro.api import (
    EmbeddingConfig,
    HopsetConfig,
    Pipeline,
    PipelineConfig,
    generators as gen,
)
from repro.apps.batched import (
    cable_costs_array,
    forest_tree_costs,
    hst_kmedian_dp_forest,
    route_demands_on_forest,
)
from repro.apps.buyatbulk import (
    CableType,
    Demand,
    buy_at_bulk,
    cable_cost,
    route_demands_on_tree,
)
from repro.apps.kmedian import KMedianResult, hst_kmedian_dp, kmedian
from repro.frt.forest import build_frt_forest
from repro.frt.lelists import compute_le_lists_batch
from repro.graph.core import Graph
from repro.util.rng import as_rng

CABLES = [CableType(1.0, 1.0), CableType(10.0, 4.0), CableType(100.0, 12.0)]


def _direct_forest(g, size, seed):
    pipe = Pipeline(
        g, PipelineConfig(embedding=EmbeddingConfig(method="direct")), rng=seed
    )
    res = pipe.sample_ensemble(size, seed=seed, mode="batched")
    assert res.forest is not None
    return res.forest


def _ragged_forest(seed=102):
    # Extreme betas force different tree depths across samples.
    g = gen.random_graph(50, 140, rng=seed)
    rng = np.random.default_rng(seed)
    ranks = np.stack([rng.permutation(g.n) for _ in range(6)])
    betas = np.array([1.0, 1.99, 1.0, 1.99, 1.5, 1.01])
    lists, _ = compute_le_lists_batch(g, ranks)
    forest = build_frt_forest(lists, ranks, betas, g.weight_bounds()[0])
    assert np.unique(forest.depths).size > 1
    return g, forest


def _single_vertex_forest():
    g = Graph.from_edge_list(1, [])
    ranks = np.zeros((3, 1), dtype=np.int64)
    betas = np.array([1.0, 1.5, 1.99])
    lists, _ = compute_le_lists_batch(g, ranks)
    return g, build_frt_forest(lists, ranks, betas, g.weight_bounds()[0])


def _assert_dp_parity(forest, weights, k, allowed=None):
    costs, facs = hst_kmedian_dp_forest(forest, weights, k, allowed=allowed)
    assert costs.shape == (forest.size,)
    assert len(facs) == forest.size
    for s in range(forest.size):
        want_cost, want_fac = hst_kmedian_dp(
            forest.tree(s), weights, k, allowed=allowed
        )
        assert costs[s] == want_cost  # exact, not approx
        assert facs[s].dtype == want_fac.dtype
        assert np.array_equal(facs[s], want_fac)
    return costs, facs


class TestForestKMedianDPParity:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_random_graph_all_k(self, k):
        g = _direct_forest(gen.random_graph(60, 160, rng=0), 6, seed=1)
        rng = np.random.default_rng(2)
        _assert_dp_parity(g, rng.uniform(0.0, 3.0, 60), k)

    def test_k_equals_one_single_sample(self):
        g = gen.grid(5, 5, rng=3)
        forest = _direct_forest(g, 1, seed=4)
        _assert_dp_parity(forest, np.ones(g.n), 1)

    def test_non_power_of_two_ensemble(self):
        g = gen.cycle(30, wmin=1, wmax=3, rng=5)
        forest = _direct_forest(g, 7, seed=6)
        _assert_dp_parity(forest, np.ones(g.n), 3)

    def test_ragged_depths_weighted_and_disallowed(self):
        g, forest = _ragged_forest()
        rng = np.random.default_rng(7)
        w = rng.uniform(0.0, 2.0, g.n)
        w[rng.choice(g.n, 10, replace=False)] = 0.0  # zero-weight clients
        allowed = np.zeros(g.n, dtype=bool)
        allowed[rng.choice(g.n, 7, replace=False)] = True
        for k in (1, 3, 9):  # 9 > |allowed| exercises the capacity cap
            _assert_dp_parity(forest, w, k, allowed=allowed)

    def test_all_disallowed_but_one(self):
        g, forest = _ragged_forest(seed=103)
        allowed = np.zeros(g.n, dtype=bool)
        allowed[11] = True
        costs, facs = _assert_dp_parity(forest, np.ones(g.n), 3, allowed=allowed)
        for s in range(forest.size):
            assert np.array_equal(facs[s], [11])

    def test_k_covers_all_clients(self):
        g = gen.random_graph(20, 50, rng=8)
        forest = _direct_forest(g, 4, seed=9)
        costs, facs = _assert_dp_parity(forest, np.ones(g.n), g.n)
        assert np.all(costs == 0.0)

    def test_single_vertex_graph(self):
        _, forest = _single_vertex_forest()
        costs, facs = _assert_dp_parity(forest, np.array([2.5]), 1)
        assert np.all(costs == 0.0)
        for f in facs:
            assert np.array_equal(f, [0])

    def test_validation(self):
        g = gen.cycle(10, rng=10)
        forest = _direct_forest(g, 2, seed=11)
        w = np.ones(g.n)
        with pytest.raises(ValueError):
            hst_kmedian_dp_forest(forest, w[:4], 1)
        with pytest.raises(ValueError):
            hst_kmedian_dp_forest(forest, -w, 1)
        with pytest.raises(ValueError):
            hst_kmedian_dp_forest(forest, w, 0)
        with pytest.raises(ValueError):
            hst_kmedian_dp_forest(forest, w, 1, allowed=np.zeros(g.n, dtype=bool))
        with pytest.raises(ValueError):
            hst_kmedian_dp_forest(forest, w, 1, allowed=np.ones(4, dtype=bool))


def _random_demands(n, count, rng):
    g = as_rng(rng)
    out = []
    while len(out) < count:
        s, t = g.integers(0, n, size=2)
        if s != t:
            out.append(Demand(int(s), int(t), float(g.integers(1, 20))))
    return out


def _sample_flows(forest, flows, s):
    lo, hi = forest.node_offsets[s], forest.node_offsets[s + 1]
    local = flows[lo:hi]
    return {int(i): float(local[i]) for i in np.flatnonzero(local > 0)}


class TestForestRoutingParity:
    def test_flows_bit_identical(self):
        g = gen.random_graph(48, 130, rng=20)
        forest = _direct_forest(g, 5, seed=21)
        demands = _random_demands(g.n, 20, 22)
        flows = route_demands_on_forest(forest, demands)
        assert flows.shape == (forest.total_nodes,)
        for s in range(forest.size):
            want = route_demands_on_tree(forest.tree(s), demands)
            assert _sample_flows(forest, flows, s) == want  # exact floats

    def test_ragged_depths(self):
        g, forest = _ragged_forest(seed=104)
        demands = _random_demands(g.n, 12, 23)
        flows = route_demands_on_forest(forest, demands)
        for s in range(forest.size):
            want = route_demands_on_tree(forest.tree(s), demands)
            assert _sample_flows(forest, flows, s) == want

    def test_repeated_demands_aggregate(self):
        g = gen.star(8, rng=24)
        forest = _direct_forest(g, 3, seed=25)
        demands = [Demand(1, 2, 1.0), Demand(1, 2, 2.0)]
        flows = route_demands_on_forest(forest, demands)
        for s in range(forest.size):
            got = _sample_flows(forest, flows, s)
            assert got and max(got.values()) == 3.0

    def test_validation(self):
        g = gen.cycle(8, rng=26)
        forest = _direct_forest(g, 2, seed=27)
        with pytest.raises(ValueError):
            route_demands_on_forest(forest, [])
        with pytest.raises(ValueError):
            route_demands_on_forest(forest, [Demand(0, 99, 1.0)])


class TestForestTreeCosts:
    def test_matches_serial_edge_sum(self):
        g = gen.random_graph(40, 100, rng=30)
        forest = _direct_forest(g, 4, seed=31)
        demands = _random_demands(g.n, 15, 32)
        flows = route_demands_on_forest(forest, demands)
        costs = forest_tree_costs(forest, flows, CABLES)
        for s in range(forest.size):
            tree = forest.tree(s)
            tree_flows = route_demands_on_tree(tree, demands)
            want = sum(
                cable_cost(f, CABLES) * tree.edge_weight_above(node)
                for node, f in tree_flows.items()
            )
            assert costs[s] == pytest.approx(want, rel=1e-12)

    def test_cable_costs_array_matches_scalar(self):
        flows = np.array([0.0, 0.5, 1.0, 9.9, 10.0, 10.5, 99.0, 250.0, -1.0])
        got = cable_costs_array(flows, CABLES)
        want = [cable_cost(float(f), CABLES) for f in flows]
        assert np.array_equal(got, want)

    def test_validation(self):
        g = gen.cycle(6, rng=33)
        forest = _direct_forest(g, 2, seed=34)
        with pytest.raises(ValueError):
            cable_costs_array(np.ones(3), [])
        with pytest.raises(ValueError):
            forest_tree_costs(forest, np.zeros(3), CABLES)


class TestBuyAtBulkEnsemble:
    def test_best_tree_selection(self):
        g = gen.random_graph(36, 90, rng=40)
        demands = _random_demands(g.n, 10, 41)
        res = buy_at_bulk(g, demands, CABLES, rng=42, trees=5)
        assert res.meta["trees"] == 5
        assert res.meta["mode"] == "batched"
        assert len(res.meta["tree_costs"]) == 5
        assert res.meta["best_sample"] == int(np.argmin(res.meta["tree_costs"]))
        assert res.tree_cost == min(res.meta["tree_costs"])
        assert res.graph_cost >= res.lower_bound * (1 - 1e-9)

    def test_more_trees_never_worse_surrogate(self):
        # With a shared seed prefix this is not guaranteed sample-for-sample,
        # so compare the best-of distributions loosely over repetitions.
        g = gen.grid(5, 5, rng=43)
        demands = [Demand(v, 0, 1.0) for v in range(1, 25)]
        one = np.mean(
            [buy_at_bulk(g, demands, CABLES, rng=s, trees=1).tree_cost for s in range(4)]
        )
        many = np.mean(
            [buy_at_bulk(g, demands, CABLES, rng=s, trees=6).tree_cost for s in range(4)]
        )
        assert many <= one * (1 + 1e-9)

    def test_pipeline_injection(self):
        g = gen.random_graph(30, 80, rng=44)
        pipe = Pipeline(
            g, PipelineConfig(embedding=EmbeddingConfig(method="direct")), rng=45
        )
        demands = _random_demands(g.n, 8, 46)
        res = buy_at_bulk(g, demands, CABLES, trees=3, pipeline=pipe)
        assert pipe.stats["samples"] == 3
        assert res.meta["trees"] == 3

    def test_pipeline_graph_mismatch_rejected(self):
        g = gen.cycle(10, rng=47)
        other = Pipeline(gen.cycle(12, rng=48))
        with pytest.raises(ValueError):
            buy_at_bulk(g, [Demand(0, 3, 1.0)], CABLES, pipeline=other)

    def test_trees_validation(self):
        g = gen.cycle(6, rng=49)
        with pytest.raises(ValueError):
            buy_at_bulk(g, [Demand(0, 3, 1.0)], CABLES, trees=0)

    def test_embedding_conflicts_rejected(self):
        # embedding fixes the tree; trees > 1 / pipeline would be silently
        # ignored, so the combination must fail loudly.
        g = gen.cycle(10, rng=53)
        pipe = Pipeline(
            g, PipelineConfig(embedding=EmbeddingConfig(method="direct")), rng=54
        )
        emb = pipe.sample()
        with pytest.raises(ValueError, match="supplied embedding"):
            buy_at_bulk(g, [Demand(0, 4, 1.0)], CABLES, embedding=emb, trees=2)
        with pytest.raises(ValueError, match="supplied embedding"):
            buy_at_bulk(g, [Demand(0, 4, 1.0)], CABLES, embedding=emb, pipeline=pipe)

    def test_embedding_path_stays_serial_reference(self):
        # Supplying an embedding must reproduce the serial computation
        # exactly (the reference branch is untouched by the batching).
        g = gen.grid(4, 4, rng=50)
        pipe = Pipeline(
            g, PipelineConfig(embedding=EmbeddingConfig(method="direct")), rng=51
        )
        emb = pipe.sample()
        demands = _random_demands(g.n, 6, 52)
        res = buy_at_bulk(g, demands, CABLES, embedding=emb)
        tree_flows = route_demands_on_tree(emb.tree, demands)
        want = sum(
            cable_cost(f, CABLES) * emb.tree.edge_weight_above(node)
            for node, f in tree_flows.items()
        )
        assert res.tree_cost == want
        assert "mode" not in res.meta


class TestKMedianBatchedPath:
    def test_meta_and_quality(self):
        g = gen.random_graph(40, 100, rng=60)
        res = kmedian(g, 4, trees=5, rng=61)
        assert isinstance(res, KMedianResult)
        assert res.meta["mode"] == "batched"
        assert res.meta["trees"] == 5
        assert res.facilities.size <= 4

    def test_matches_per_tree_dp_on_shared_forest(self):
        # The pipeline's forest DP must equal running the serial DP on each
        # tree of the same ensemble — this is the end-to-end guarantee the
        # per-function parity tests compose into.
        g = gen.random_graph(30, 80, rng=62)
        forest = _direct_forest(g, 5, seed=63)
        w = np.random.default_rng(64).uniform(0.0, 2.0, g.n)
        costs, facs = hst_kmedian_dp_forest(forest, w, 3)
        for s in range(forest.size):
            want_cost, want_fac = hst_kmedian_dp(forest.tree(s), w, 3)
            assert costs[s] == want_cost
            assert np.array_equal(facs[s], want_fac)


class TestSolveAppFacade:
    def test_kmedian_direct(self):
        g = gen.random_graph(30, 80, rng=70)
        pipe = Pipeline(
            g, PipelineConfig(embedding=EmbeddingConfig(method="direct")), rng=71
        )
        res = pipe.solve_app("kmedian", k=3, trees=3)
        assert isinstance(res, KMedianResult)
        assert pipe.stats["apps"] == 1
        assert pipe.timings["apps"] > 0.0

    def test_buy_at_bulk_uses_this_pipeline(self):
        g = gen.random_graph(30, 80, rng=72)
        pipe = Pipeline(
            g, PipelineConfig(embedding=EmbeddingConfig(method="direct")), rng=73
        )
        demands = _random_demands(g.n, 6, 74)
        res = pipe.solve_app("buy-at-bulk", demands=demands, cables=CABLES, trees=3)
        assert res.meta["trees"] == 3
        assert pipe.stats["samples"] == 3  # sampled through this pipeline
        assert pipe.stats["apps"] == 1

    def test_kmedian_oracle_method_forwards_oracle(self):
        g = gen.random_graph(24, 60, rng=75)
        pipe = Pipeline(g, PipelineConfig(hopset=HopsetConfig(eps=0.25, d0=4)), rng=76)
        res = pipe.solve_app("kmedian", k=2, trees=2)
        assert res.meta["oracle"] is True
        assert pipe.stats["oracle_builds"] == 1

    def test_unknown_app_rejected(self):
        pipe = Pipeline(gen.cycle(8, rng=77))
        with pytest.raises(ValueError, match="unknown application"):
            pipe.solve_app("max-flow")

    def test_kmedian_explicit_rng_overrides(self):
        g = gen.random_graph(24, 60, rng=78)
        pipe = Pipeline(
            g, PipelineConfig(embedding=EmbeddingConfig(method="direct")), rng=79
        )
        a = pipe.solve_app("kmedian", k=2, trees=2, rng=5)
        b = kmedian(g, 2, trees=2, rng=5)
        assert a.cost == b.cost
        assert np.array_equal(a.facilities, b.facilities)

    def test_buy_at_bulk_reserved_kwargs_rejected(self):
        g = gen.cycle(10, rng=80)
        pipe = Pipeline(
            g, PipelineConfig(embedding=EmbeddingConfig(method="direct")), rng=81
        )
        demands = [Demand(0, 4, 1.0)]
        for key, value in (("rng", 3), ("pipeline", pipe), ("embedding", None)):
            with pytest.raises(ValueError, match="cannot be overridden"):
                pipe.solve_app(
                    "buy-at-bulk", demands=demands, cables=CABLES, **{key: value}
                )
