"""Tests for buy-at-bulk network design (Section 10)."""

import numpy as np
import pytest

from repro.apps.buyatbulk import (
    CableType,
    Demand,
    buy_at_bulk,
    cable_cost,
    route_demands_on_tree,
)
from repro.frt import sample_frt_tree
from repro.graph import generators as gen
from repro.util.rng import as_rng

CABLES = [CableType(1.0, 1.0), CableType(10.0, 4.0), CableType(100.0, 12.0)]


class TestDataTypes:
    def test_cable_validation(self):
        with pytest.raises(ValueError):
            CableType(0.0, 1.0)
        with pytest.raises(ValueError):
            CableType(1.0, -1.0)

    def test_demand_validation(self):
        with pytest.raises(ValueError):
            Demand(0, 0, 1.0)
        with pytest.raises(ValueError):
            Demand(0, 1, 0.0)


class TestCableCost:
    def test_zero_flow_free(self):
        assert cable_cost(0.0, CABLES) == 0.0

    def test_picks_cheapest_type(self):
        # flow 10: type2 = 1 cable @4; type1 = 10 cables @10; type3 = 12.
        assert cable_cost(10.0, CABLES) == 4.0

    def test_economies_of_scale(self):
        # flow 100: bulk cable wins (12 < 40 < 100).
        assert cable_cost(100.0, CABLES) == 12.0

    def test_ceiling(self):
        assert cable_cost(10.5, CABLES) == 8.0  # 2 cables of type 2

    def test_no_cables_rejected(self):
        with pytest.raises(ValueError):
            cable_cost(1.0, [])


class TestTreeRouting:
    def test_flow_conservation_on_path(self):
        g = gen.cycle(12, rng=0)
        emb = sample_frt_tree(g, rng=1)
        demands = [Demand(0, 6, 5.0)]
        flows = route_demands_on_tree(emb.tree, demands)
        lvl = int(emb.tree.lca_levels([0], [6])[0])
        # both endpoints climb lvl edges
        assert len(flows) == 2 * lvl
        assert all(f == 5.0 for f in flows.values())

    def test_flows_aggregate(self):
        g = gen.star(8, rng=0)
        emb = sample_frt_tree(g, rng=2)
        demands = [Demand(1, 2, 1.0), Demand(1, 2, 2.0)]
        flows = route_demands_on_tree(emb.tree, demands)
        assert max(flows.values()) == 3.0

    def test_tree_cost_matches_distances(self):
        # With a single linear cable (u=1, c=1), tree cost = Σ d_i · dist_T.
        g = gen.grid(3, 4, rng=3)
        emb = sample_frt_tree(g, rng=4)
        demands = [Demand(0, 11, 1.0), Demand(2, 9, 1.0)]
        res = buy_at_bulk(g, demands, [CableType(1.0, 1.0)], embedding=emb)
        want = sum(emb.tree.distance(d.source, d.target) for d in demands)
        assert res.tree_cost == pytest.approx(want)


class TestBuyAtBulkPipeline:
    def _random_demands(self, n, count, rng):
        g = as_rng(rng)
        out = []
        for _ in range(count):
            s, t = g.choice(n, size=2, replace=False)
            out.append(Demand(int(s), int(t), float(g.integers(1, 20))))
        return out

    def test_cost_ordering_invariants(self):
        g = gen.random_graph(30, 70, rng=5)
        demands = self._random_demands(30, 10, 6)
        res = buy_at_bulk(g, demands, CABLES, rng=7)
        assert res.lower_bound > 0
        # any feasible integral solution is at least the fractional LB
        assert res.graph_cost >= res.lower_bound * (1 - 1e-9)
        assert res.baseline_cost >= res.lower_bound * (1 - 1e-9)

    def test_approximation_ratio_sane(self):
        g = gen.random_graph(40, 100, rng=8)
        demands = self._random_demands(40, 15, 9)
        ratios = []
        for seed in range(5):
            res = buy_at_bulk(g, demands, CABLES, rng=seed)
            ratios.append(res.ratio_vs_baseline)
        # Expected O(log n) vs the baseline; in practice a small constant.
        assert np.mean(ratios) <= np.log2(g.n) * 3

    def test_aggregation_beats_baseline_with_bulk_discounts(self):
        # Many unit demands into one sink: the tree shares upstream edges,
        # the baseline also shares shortest paths; with steep economies of
        # scale both aggregate, and the tree solution must stay comparable.
        g = gen.grid(5, 5, rng=10)
        demands = [Demand(v, 0, 1.0) for v in range(1, 25)]
        cables = [CableType(1.0, 1.0), CableType(100.0, 2.0)]
        res = buy_at_bulk(g, demands, cables, rng=11)
        assert res.graph_cost <= 6 * res.baseline_cost

    def test_edge_flows_support_feasible_routing(self):
        # Total flow crossing any graph cut must carry the demand across it;
        # sanity-check a specific cut on a path graph.
        g = gen.path_graph(8)
        demands = [Demand(0, 7, 3.0), Demand(1, 5, 2.0)]
        res = buy_at_bulk(g, demands, CABLES, rng=12)
        # cut between vertices 3 and 4 separates 0,1 from 5,7:
        crossing = sum(
            f for (u, v), f in res.edge_flows.items() if u <= 3 < v or v <= 3 < u
        )
        assert crossing >= 5.0 - 1e-9  # both demands cross

    def test_single_demand_tree_cost_at_least_graph_distance(self):
        g = gen.cycle(16, rng=13)
        res = buy_at_bulk(g, [Demand(0, 8, 1.0)], [CableType(1.0, 1.0)], rng=14)
        from repro.graph.shortest_paths import dijkstra_distances

        d = dijkstra_distances(g, [0])[0][8]
        assert res.tree_cost >= d - 1e-9  # dominance
        assert res.baseline_cost == pytest.approx(d)

    def test_validation(self):
        g = gen.cycle(6, rng=0)
        with pytest.raises(ValueError):
            buy_at_bulk(g, [], CABLES)
        with pytest.raises(ValueError):
            buy_at_bulk(g, [Demand(0, 1, 1.0)], [])
        with pytest.raises(ValueError):
            buy_at_bulk(g, [Demand(0, 99, 1.0)], CABLES)

    def test_embedding_reuse(self):
        g = gen.grid(4, 4, rng=15)
        emb = sample_frt_tree(g, rng=16)
        demands = self._random_demands(16, 5, 17)
        a = buy_at_bulk(g, demands, CABLES, embedding=emb)
        b = buy_at_bulk(g, demands, CABLES, embedding=emb)
        assert a.graph_cost == b.graph_cost  # deterministic given the tree

    def test_meta(self):
        g = gen.cycle(10, rng=18)
        res = buy_at_bulk(g, [Demand(0, 5, 1.0)], CABLES, rng=19)
        assert res.meta["demands"] == 1
        assert res.meta["tree_edges_used"] >= 1
