"""Config dataclasses of the repro.api facade: validation + round-tripping."""

import dataclasses

import pytest

from repro.api import (
    EMBEDDING_METHODS,
    HOPSET_KINDS,
    EmbeddingConfig,
    ExecutionConfig,
    HopsetConfig,
    OracleConfig,
    PipelineConfig,
)


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = PipelineConfig()
        assert cfg.hopset.kind == "hub"
        assert cfg.embedding.method == "oracle"
        assert cfg.embedding.backend == "dense"
        assert cfg.seed is None

    def test_hopset_kind_checked(self):
        with pytest.raises(ValueError, match="kind"):
            HopsetConfig(kind="cohen")
        for kind in HOPSET_KINDS:
            HopsetConfig(kind=kind)

    def test_hopset_numeric_bounds(self):
        with pytest.raises(ValueError):
            HopsetConfig(d0=0)
        with pytest.raises(ValueError):
            HopsetConfig(eps=-0.1)
        with pytest.raises(ValueError):
            HopsetConfig(c=0.0)

    def test_d0_rejected_for_non_hub_kinds(self):
        """Regression: d0 used to be forwarded to identity_hopset as an
        explicit hop bound, silently truncating distances when d0 < SPD."""
        with pytest.raises(ValueError, match="d0 only applies"):
            HopsetConfig(kind="identity", d0=2)
        with pytest.raises(ValueError, match="d0 only applies"):
            HopsetConfig(kind="exact-closure", d0=2)

    def test_oracle_penalty_base(self):
        with pytest.raises(ValueError):
            OracleConfig(penalty_base=0.5)
        assert OracleConfig(penalty_base=None).penalty_base is None
        assert OracleConfig(penalty_base=1.0).penalty_base == 1.0

    def test_embedding_method_checked(self):
        with pytest.raises(ValueError, match="method"):
            EmbeddingConfig(method="quantum")
        for method in EMBEDDING_METHODS:
            EmbeddingConfig(method=method)

    def test_embedding_backend_nonempty(self):
        with pytest.raises(ValueError, match="backend"):
            EmbeddingConfig(backend="")

    def test_pipeline_nested_types_checked(self):
        with pytest.raises(TypeError):
            PipelineConfig(hopset={"kind": "hub"})
        with pytest.raises(TypeError):
            PipelineConfig(oracle=42)
        with pytest.raises(TypeError):
            PipelineConfig(embedding=None)

    def test_pipeline_seed_checked(self):
        with pytest.raises(ValueError):
            PipelineConfig(seed=-1)
        with pytest.raises(ValueError):
            PipelineConfig(seed=1.5)
        assert PipelineConfig(seed=0).seed == 0

    def test_configs_are_frozen(self):
        cfg = PipelineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.seed = 3
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.hopset.eps = 0.5


class TestRoundTrip:
    def test_stage_round_trip(self):
        for cfg in (
            HopsetConfig(kind="identity", eps=0.0),
            OracleConfig(penalty_base=1.25, inner_early_exit=False),
            EmbeddingConfig(method="direct", backend="reference"),
        ):
            assert type(cfg).from_dict(cfg.to_dict()) == cfg

    def test_pipeline_round_trip(self):
        cfg = PipelineConfig(
            hopset=HopsetConfig(kind="hub", d0=4, eps=0.125, c=1.5),
            oracle=OracleConfig(penalty_base=1.2),
            embedding=EmbeddingConfig(method="direct", backend="reference"),
            seed=7,
        )
        d = cfg.to_dict()
        assert d["hopset"]["eps"] == 0.125  # plain nested dicts
        assert PipelineConfig.from_dict(d) == cfg

    def test_from_dict_partial(self):
        cfg = PipelineConfig.from_dict({"seed": 3, "hopset": {"eps": 0.0}})
        assert cfg.seed == 3
        assert cfg.hopset.eps == 0.0
        assert cfg.embedding == EmbeddingConfig()  # defaults fill the rest

    def test_from_dict_accepts_config_instances(self):
        cfg = PipelineConfig.from_dict({"hopset": HopsetConfig(d0=3)})
        assert cfg.hopset.d0 == 3

    def test_from_dict_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            HopsetConfig.from_dict({"kind": "hub", "typo": 1})
        with pytest.raises(ValueError, match="unknown"):
            PipelineConfig.from_dict({"hopsets": {}})

    def test_from_dict_type_checked(self):
        with pytest.raises(TypeError):
            PipelineConfig.from_dict([("seed", 3)])

    def test_from_dict_validates_values(self):
        with pytest.raises(ValueError):
            PipelineConfig.from_dict({"hopset": {"eps": -1.0}})


class TestEnsembleMode:
    def test_default_serial(self):
        assert EmbeddingConfig().ensemble_mode == "serial"

    def test_batched_accepted(self):
        assert EmbeddingConfig(ensemble_mode="batched").ensemble_mode == "batched"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="ensemble_mode"):
            EmbeddingConfig(ensemble_mode="parallel")

    def test_round_trips(self):
        cfg = EmbeddingConfig(method="direct", ensemble_mode="batched")
        assert EmbeddingConfig.from_dict(cfg.to_dict()) == cfg


class TestExecutionConfig:
    def test_defaults(self):
        cfg = ExecutionConfig()
        assert cfg.mode is None  # inherit EmbeddingConfig.ensemble_mode
        assert cfg.workers == 1
        assert cfg.shard_size is None

    def test_mode_checked(self):
        with pytest.raises(ValueError, match="execution mode"):
            ExecutionConfig(mode="parallel")
        ExecutionConfig(mode="serial")
        ExecutionConfig(mode="batched")

    def test_workers_checked(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionConfig(workers=0)
        with pytest.raises(ValueError, match="workers"):
            ExecutionConfig(workers=-2)
        with pytest.raises(TypeError, match="workers"):
            ExecutionConfig(workers=2.0)
        with pytest.raises(TypeError, match="workers"):
            ExecutionConfig(workers=True)  # bools are not worker counts

    def test_shard_size_checked(self):
        with pytest.raises(ValueError, match="shard_size"):
            ExecutionConfig(shard_size=0)
        with pytest.raises(ValueError, match="shard_size"):
            ExecutionConfig(shard_size="big")
        assert ExecutionConfig(shard_size=3).shard_size == 3

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionConfig().workers = 2

    def test_round_trip(self):
        cfg = ExecutionConfig(mode="batched", workers=4, shard_size=2)
        d = cfg.to_dict()
        assert d == {"mode": "batched", "workers": 4, "shard_size": 2}
        assert ExecutionConfig.from_dict(d) == cfg

    def test_with_overrides(self):
        cfg = ExecutionConfig(mode="batched", workers=4, shard_size=2)
        assert cfg.with_overrides() is cfg  # no-op keeps the instance
        assert cfg.with_overrides(mode="serial").mode == "serial"
        assert cfg.with_overrides(workers=8).workers == 8
        # shard_size always survives a legacy-kwarg override
        assert cfg.with_overrides(mode="serial", workers=8).shard_size == 2
        # legacy workers <= 0 historically meant "in-process"
        assert cfg.with_overrides(workers=0).workers == 1
        assert cfg.with_overrides(workers=-3).workers == 1

    def test_pipeline_nesting(self):
        cfg = PipelineConfig(execution=ExecutionConfig(workers=2))
        assert cfg.execution.workers == 2
        assert PipelineConfig().execution == ExecutionConfig()
        with pytest.raises(TypeError):
            PipelineConfig(execution={"workers": 2})

    def test_pipeline_round_trip_with_execution(self):
        cfg = PipelineConfig(
            execution=ExecutionConfig(mode="batched", workers=3), seed=1
        )
        d = cfg.to_dict()
        assert d["execution"] == {"mode": "batched", "workers": 3, "shard_size": None}
        assert PipelineConfig.from_dict(d) == cfg

    def test_pipeline_from_dict_validates_execution(self):
        with pytest.raises(ValueError):
            PipelineConfig.from_dict({"execution": {"workers": 0}})
