"""Tests for stretch-evaluation utilities (repro.frt.stretch)."""

import numpy as np
import pytest

from repro.frt import evaluate_stretch, sample_frt_tree
from repro.frt.stretch import StretchReport, sample_pairs
from repro.graph import generators as gen
from repro.graph.core import Graph


class TestSamplePairs:
    def test_all_pairs_when_count_none(self):
        us, vs = sample_pairs(6, None)
        assert us.size == 15
        assert np.all(us < vs)

    def test_all_pairs_when_count_large(self):
        us, vs = sample_pairs(5, 100)
        assert us.size == 10

    def test_subset_distinct_valid(self):
        us, vs = sample_pairs(40, 25, rng=0)
        assert us.size == 25
        assert np.all((0 <= us) & (us < 40))
        assert np.all(us < vs) and np.all(vs < 40)
        keys = us * 40 + vs
        assert np.unique(keys).size == keys.size

    def test_reproducible(self):
        a = sample_pairs(30, 10, rng=3)
        b = sample_pairs(30, 10, rng=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_unranking_covers_extremes(self):
        # With count == total the unranking path is bypassed; with total-1
        # we exercise it broadly and must stay in range.
        n = 12
        total = n * (n - 1) // 2
        us, vs = sample_pairs(n, total - 1, rng=4)
        assert us.size == total - 1
        assert np.all(us < vs)


class TestEvaluateStretch:
    def test_report_fields(self):
        g = gen.grid(3, 4, rng=0)
        shared = np.random.default_rng(1)
        rep = evaluate_stretch(
            g, lambda: sample_frt_tree(g, rng=shared).tree, trees=3, rng=2
        )
        assert isinstance(rep, StretchReport)
        assert rep.trees == 3 and rep.pairs == 66
        assert rep.mean_stretch <= rep.max_expected_stretch + 1e-9
        assert rep.max_expected_stretch <= rep.max_stretch_single + 1e-9
        assert rep.expected_stretch_vs_log(g.n) == pytest.approx(
            rep.max_expected_stretch / np.log2(g.n)
        )

    def test_pairs_subset(self):
        g = gen.grid(3, 4, rng=0)
        shared = np.random.default_rng(1)
        rep = evaluate_stretch(
            g, lambda: sample_frt_tree(g, rng=shared).tree, trees=2, pairs=7, rng=2
        )
        assert rep.pairs == 7

    def test_trees_validation(self):
        g = gen.cycle(5, rng=0)
        with pytest.raises(ValueError):
            evaluate_stretch(g, lambda: None, trees=0)

    def test_disconnected_rejected(self):
        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            evaluate_stretch(g, lambda: None, trees=1)

    def test_detects_non_dominating_sampler(self):
        # A fake "tree" reporting tiny distances must flip the flag.
        g = gen.cycle(6, rng=0)

        class Fake:
            def distances(self, us, vs):
                return np.full(np.atleast_1d(us).size, 1e-6)

        rep = evaluate_stretch(g, lambda: Fake(), trees=1, rng=1)
        assert not rep.dominating
