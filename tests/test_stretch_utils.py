"""Tests for stretch-evaluation utilities (repro.frt.stretch)."""

import tracemalloc

import numpy as np
import pytest

from repro.frt import evaluate_stretch, sample_frt_tree
from repro.frt.stretch import StretchReport, all_pairs, sample_pairs
from repro.util.pairs import sample_distinct, unrank_pairs
from repro.graph import generators as gen
from repro.graph.core import Graph


class TestSamplePairs:
    def test_all_pairs_when_count_none(self):
        us, vs = sample_pairs(6, None)
        assert us.size == 15
        assert np.all(us < vs)

    def test_all_pairs_when_count_large(self):
        us, vs = sample_pairs(5, 100)
        assert us.size == 10

    def test_subset_distinct_valid(self):
        us, vs = sample_pairs(40, 25, rng=0)
        assert us.size == 25
        assert np.all((0 <= us) & (us < 40))
        assert np.all(us < vs) and np.all(vs < 40)
        keys = us * 40 + vs
        assert np.unique(keys).size == keys.size

    def test_reproducible(self):
        a = sample_pairs(30, 10, rng=3)
        b = sample_pairs(30, 10, rng=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            sample_pairs(100, -3)

    def test_unranking_covers_extremes(self):
        # With count == total the unranking path is bypassed; with total-1
        # we exercise it broadly and must stay in range.
        n = 12
        total = n * (n - 1) // 2
        us, vs = sample_pairs(n, total - 1, rng=4)
        assert us.size == total - 1
        assert np.all(us < vs)


class TestAllPairs:
    @pytest.mark.parametrize("n", [2, 3, 10, 100])
    def test_matches_triu_indices(self, n):
        iu, ju = all_pairs(n)
        wi, wj = np.triu_indices(n, k=1)
        assert iu.dtype == ju.dtype == np.int64
        assert np.array_equal(iu, wi)
        assert np.array_equal(ju, wj)

    def test_blocked_unranking_consistent(self, monkeypatch):
        # Shrinking the block size must not change the output: the blocks
        # are a pure memory bound, not a semantic boundary.
        import repro.util.pairs as pairs

        want = all_pairs(40)
        monkeypatch.setattr(pairs, "_ALL_PAIRS_BLOCK", 7)
        got = all_pairs(40)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])

    def test_degenerate_sizes(self):
        for n in (0, 1):
            iu, ju = all_pairs(n)
            assert iu.size == ju.size == 0


class TestUnrankPairs:
    def test_full_sweep_matches_triu(self):
        # Exactness on every key: unranking 0..total-1 must reproduce
        # np.triu_indices order exactly.
        n = 300
        total = n * (n - 1) // 2
        iu, ju = unrank_pairs(n, np.arange(total))
        eu, ev = np.triu_indices(n, k=1)
        assert np.array_equal(iu, eu)
        assert np.array_equal(ju, ev)

    def test_boundary_keys_large_n(self):
        # Regression: the old float-sqrt closed form can misassign keys at
        # triangular-row boundaries.  Pin the exact integer contract
        # (row_start(i) <= key < row_start(i+1)) on both edges of a spread
        # of rows at a size where n^2-scale radicands stress float64.
        n = 10**6

        def row_start(i):
            return i * (2 * n - i - 1) // 2

        total = n * (n - 1) // 2
        rows = [0, 1, 2, 5, 10**3, n // 2, n - 3, n - 2]
        keys = sorted(
            {
                key
                for i in rows
                for key in (row_start(i), row_start(i + 1) - 1)
                if 0 <= key < total
            }
        )
        iu, ju = unrank_pairs(n, np.array(keys))
        for key, i, j in zip(keys, iu.tolist(), ju.tolist()):
            assert row_start(i) <= key < row_start(i + 1)
            assert j == i + 1 + (key - row_start(i))
            assert 0 <= i < j < n

    def test_out_of_range_keys_rejected(self):
        with pytest.raises(ValueError):
            unrank_pairs(5, np.array([10]))  # total = 10, keys go 0..9
        with pytest.raises(ValueError):
            unrank_pairs(5, np.array([-1]))


class TestSampleDistinctKeys:
    def test_no_quadratic_allocation(self):
        # Regression: Generator.choice(total, size=count, replace=False)
        # materialized a full length-total permutation — ~1.6 GB at
        # n = 20_000.  The rejection sampler must stay within a small
        # constant budget.
        n = 20_000
        tracemalloc.start()
        try:
            us, vs = sample_pairs(n, 5, rng=7)
        finally:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert peak < 5 * 2**20, f"peak allocation {peak / 2**20:.1f} MiB"
        assert us.size == 5
        assert np.all((0 <= us) & (us < vs) & (vs < n))
        keys = us * n + vs
        assert np.unique(keys).size == keys.size

    def test_distinct_and_in_range(self):
        for count in (1, 10, 33, 60, 99):
            keys = sample_distinct(100, count, np.random.default_rng(count))
            assert keys.size == count
            assert np.unique(keys).size == count
            assert keys.min() >= 0 and keys.max() < 100

    def test_roughly_uniform(self):
        # Every key should appear with frequency ~count/total over many
        # draws (loose 3-sigma-ish bounds; pins against e.g. a sorted-
        # truncation bug that would bias toward small keys).
        total, count, reps = 20, 4, 3000
        g = np.random.default_rng(0)
        freq = np.zeros(total)
        for _ in range(reps):
            np.add.at(freq, sample_distinct(total, count, g), 1)
        expected = reps * count / total
        assert np.all(freq > 0.8 * expected)
        assert np.all(freq < 1.2 * expected)


class TestEvaluateStretch:
    def test_report_fields(self):
        g = gen.grid(3, 4, rng=0)
        shared = np.random.default_rng(1)
        rep = evaluate_stretch(
            g, lambda: sample_frt_tree(g, rng=shared).tree, trees=3, rng=2
        )
        assert isinstance(rep, StretchReport)
        assert rep.trees == 3 and rep.pairs == 66
        assert rep.mean_stretch <= rep.max_expected_stretch + 1e-9
        assert rep.max_expected_stretch <= rep.max_stretch_single + 1e-9
        assert rep.expected_stretch_vs_log(g.n) == pytest.approx(
            rep.max_expected_stretch / np.log2(g.n)
        )

    def test_pairs_subset(self):
        g = gen.grid(3, 4, rng=0)
        shared = np.random.default_rng(1)
        rep = evaluate_stretch(
            g, lambda: sample_frt_tree(g, rng=shared).tree, trees=2, pairs=7, rng=2
        )
        assert rep.pairs == 7

    def test_trees_validation(self):
        g = gen.cycle(5, rng=0)
        with pytest.raises(ValueError):
            evaluate_stretch(g, lambda: None, trees=0)

    def test_disconnected_rejected(self):
        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            evaluate_stretch(g, lambda: None, trees=1)

    def test_detects_non_dominating_sampler(self):
        # A fake "tree" reporting tiny distances must flip the flag.
        g = gen.cycle(6, rng=0)

        class Fake:
            def distances(self, us, vs):
                return np.full(np.atleast_1d(us).size, 1e-6)

        rep = evaluate_stretch(g, lambda: Fake(), trees=1, rng=1)
        assert not rep.dominating
