"""The Section-3 algorithm zoo vs. independent ground truth (networkx/scipy)."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.core import Graph
from repro.graph.shortest_paths import dijkstra_distances, shortest_path_diameter
from repro.mbf import run, run_to_fixpoint, zoo

INF = math.inf


def nx_widest_paths(G: Graph, source: int) -> np.ndarray:
    """Ground-truth widest path via max-spanning-tree property."""
    nxg = G.to_networkx()
    out = np.zeros(G.n)
    out[source] = INF
    # Widest paths are realized on a maximum spanning tree.
    mst = nx.maximum_spanning_tree(nxg, weight="weight")
    for t in range(G.n):
        if t == source:
            continue
        path = nx.shortest_path(mst, source, t)
        out[t] = min(
            mst[u][v]["weight"] for u, v in zip(path[:-1], path[1:])
        )
    return out


class TestSSSP:
    def test_matches_dijkstra(self, small_graphs):
        for g in small_graphs:
            inst = zoo.sssp(g.n, 0)
            states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
            assert np.allclose(inst.decode(states), dijkstra_distances(g, [0])[0])

    def test_h_hop_semantics(self):
        g = gen.path_graph(5)
        inst = zoo.sssp(5, 0)
        got = inst.decode(run(g, inst.algo, inst.x0, 2))
        assert got.tolist() == [0, 1, 2, INF, INF]


class TestSourceDetection:
    def test_k_and_distance_limits(self):
        # Path 0-1-2-3-4, sources {0, 4}, k=1, d=2.
        g = gen.path_graph(5)
        inst = zoo.source_detection(5, [0, 4], k=1, dmax=2.0)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        out = inst.decode(states)
        assert out[1, 0] == 1.0  # node 1 sees source 0
        assert np.isinf(out[3, 0])  # source 0 at distance 3 > dmax
        assert out[3, 4] == 1.0
        # k=1: node 2 is at distance 2 from both; keeps smaller id 0.
        assert out[2, 0] == 2.0 and np.isinf(out[2, 4])

    def test_full_parameters_vs_bruteforce(self, small_graphs):
        for g in small_graphs[:4]:
            D = dijkstra_distances(g)
            S, k, dmax = [0, 2, 3], 2, 3.5
            inst = zoo.source_detection(g.n, S, k=k, dmax=dmax)
            states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
            out = inst.decode(states)
            for v in range(g.n):
                cand = sorted((D[v, s], s) for s in S if D[v, s] <= dmax)[:k]
                want = {s: d for d, s in cand}
                got = {w: out[v, w] for w in range(g.n) if np.isfinite(out[v, w])}
                assert got == pytest.approx(want)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            zoo.source_detection(4, [0], k=0)


class TestKSSPAndMSSP:
    def test_kssp_counts(self):
        g = gen.cycle(8, rng=0)
        k = 3
        inst = zoo.k_ssp(g.n, k)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        out = inst.decode(states)
        assert np.all(np.isfinite(out).sum(axis=1) == k)

    def test_kssp_selects_closest(self, small_graphs):
        g = small_graphs[4]  # random graph
        D = dijkstra_distances(g)
        k = 4
        inst = zoo.k_ssp(g.n, k)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        out = inst.decode(states)
        for v in range(g.n):
            nearest = sorted((D[v, s], s) for s in range(g.n))[:k]
            want = {s: d for d, s in nearest}
            got = {w: out[v, w] for w in range(g.n) if np.isfinite(out[v, w])}
            assert got == pytest.approx(want)

    def test_mssp(self, small_graphs):
        g = small_graphs[2]
        D = dijkstra_distances(g)
        S = [1, 5, 7]
        inst = zoo.mssp(g.n, S)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        out = inst.decode(states)
        for v in range(g.n):
            for s in S:
                assert out[v, s] == pytest.approx(D[v, s])


class TestAPSP:
    def test_matches_dijkstra(self, small_graphs):
        for g in small_graphs:
            inst = zoo.apsp(g.n)
            states, iters = run_to_fixpoint(g, inst.algo, inst.x0)
            assert np.allclose(inst.decode(states), dijkstra_distances(g))
            assert iters == shortest_path_diameter(g)


class TestForestFire:
    def test_detection_radius(self):
        g = gen.path_graph(6)  # unit weights
        inst = zoo.forest_fire(6, burning=[0], dmax=2.5)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        assert inst.decode(states).tolist() == [True, True, True, False, False, False]

    def test_multiple_fires(self):
        g = gen.path_graph(7)
        inst = zoo.forest_fire(7, burning=[0, 6], dmax=1.0)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        assert inst.decode(states).tolist() == [
            True, True, False, False, False, True, True,
        ]

    def test_no_fire(self):
        g = gen.path_graph(4)
        inst = zoo.forest_fire(4, burning=[], dmax=10.0)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        assert not inst.decode(states).any()

    def test_unreachable_fire_with_infinite_radius(self):
        # dmax=inf degenerates to reachability: an isolated vertex must
        # not report a fire (inf <= inf used to decode to True).
        g = Graph.from_edge_list(3, [(0, 1, 1.0)])
        inst = zoo.forest_fire(3, burning=[0], dmax=INF)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        assert inst.decode(states).tolist() == [True, True, False]


class TestWidestPaths:
    def test_sswp_matches_mst_ground_truth(self, small_graphs):
        for g in small_graphs[:5]:
            inst = zoo.sswp(g.n, 0)
            states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
            got = inst.decode(states)
            want = nx_widest_paths(g, 0)
            assert np.allclose(got, want)

    def test_apwp_symmetric(self, small_graphs):
        g = small_graphs[1]
        inst = zoo.apwp(g.n)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        W = inst.decode(states)
        assert np.allclose(W, W.T)
        assert np.all(np.isinf(np.diag(W)))

    def test_apwp_row_matches_sswp(self, small_graphs):
        g = small_graphs[4]
        ap = zoo.apwp(g.n)
        states, _ = run_to_fixpoint(g, ap.algo, ap.x0)
        W = ap.decode(states)
        ss = zoo.sswp(g.n, 3)
        s_states, _ = run_to_fixpoint(g, ss.algo, ss.x0)
        assert np.allclose(W[3], ss.decode(s_states))

    def test_mswp_subset(self, small_graphs):
        g = small_graphs[2]
        S = [0, 4]
        inst = zoo.mswp(g.n, S)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        W = inst.decode(states)
        full = zoo.apwp(g.n)
        f_states, _ = run_to_fixpoint(g, full.algo, full.x0)
        WF = full.decode(f_states)
        assert np.allclose(W[:, S], WF[:, S])
        others = [v for v in range(g.n) if v not in S]
        assert np.all(W[:, others] == 0)

    def test_bottleneck_on_path(self):
        g = Graph.from_edge_list(4, [(0, 1, 5.0), (1, 2, 2.0), (2, 3, 9.0)])
        inst = zoo.sswp(4, 0)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        assert inst.decode(states).tolist() == [INF, 5.0, 2.0, 2.0]


class TestKSDP:
    def test_k_shortest_distances_diamond(self):
        # Two 0->3 paths of weights 3 and 4; a third of weight 7.
        g = Graph.from_edge_list(
            4, [(0, 1, 1.0), (1, 3, 2.0), (0, 2, 2.0), (2, 3, 2.0), (0, 3, 7.0)]
        )
        inst = zoo.k_sdp(4, k=2, sink=3)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        out = inst.decode(states)
        weights0 = [w for w, _ in out[0]]
        assert weights0 == [3.0, 4.0]

    def test_paths_are_returned(self):
        g = Graph.from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        inst = zoo.k_sdp(3, k=2, sink=2)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        out = inst.decode(states)
        assert out[0][0] == (2.0, (0, 1, 2))
        assert out[0][1] == (5.0, (0, 2))

    def test_matches_networkx_simple_paths(self):
        g = gen.random_graph(7, 12, rng=5)
        k, sink = 3, 6
        inst = zoo.k_sdp(g.n, k=k, sink=sink)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        out = inst.decode(states)
        nxg = g.to_networkx()
        for v in range(g.n):
            if v == sink:
                continue
            all_paths = [
                sum(nxg[a][b]["weight"] for a, b in zip(p[:-1], p[1:]))
                for p in nx.all_simple_paths(nxg, v, sink)
            ]
            want = sorted(all_paths)[:k]
            got = [w for w, _ in out[v]]
            assert got == pytest.approx(want)

    def test_distinct_variant(self):
        # Two distinct paths of equal weight 2: k-DSDP keeps one per weight.
        g = Graph.from_edge_list(
            4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)]
        )
        sdp = zoo.k_sdp(4, k=2, sink=3)
        s1, _ = run_to_fixpoint(g, sdp.algo, sdp.x0)
        assert [w for w, _ in sdp.decode(s1)[0]] == [2.0, 2.0]
        dsdp = zoo.k_dsdp(4, k=2, sink=3)
        s2, _ = run_to_fixpoint(g, dsdp.algo, dsdp.x0)
        out = dsdp.decode(s2)[0]
        weights = [w for w, _ in out]
        assert len(weights) == len(set(weights))  # distinct weights only


class TestParameterValidation:
    """Zoo factories reject out-of-range / degenerate instance parameters."""

    def test_sssp_sswp_source_range(self):
        for factory in (zoo.sssp, zoo.sswp):
            with pytest.raises(ValueError, match="out of range"):
                factory(5, 5)
            with pytest.raises(ValueError, match="out of range"):
                factory(5, -1)
            with pytest.raises(TypeError):
                factory(5, 1.7)  # no silent truncation of float ids

    def test_multi_source_range(self):
        for factory in (
            lambda n, s: zoo.source_detection(n, s, k=1),
            zoo.mssp,
            zoo.mswp,
        ):
            with pytest.raises(ValueError, match="out of range"):
                factory(5, [0, 7])

    def test_sources_deduplicated(self):
        # A duplicated source must not occupy two of the k slots: with
        # S = {0, 0, 4} and k = 2, node 2 (equidistant from both) must
        # detect *both* real sources, not 0 twice.
        g = gen.path_graph(5)
        inst = zoo.source_detection(5, [0, 0, 4], k=2)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        out = inst.decode(states)
        assert out[2, 0] == 2.0 and out[2, 4] == 2.0
        # MSSP's k = |S| is computed after deduplication.
        dup = zoo.mssp(5, [0, 4, 4, 0])
        nodup = zoo.mssp(5, [0, 4])
        s1, _ = run_to_fixpoint(g, dup.algo, dup.x0)
        s2, _ = run_to_fixpoint(g, nodup.algo, nodup.x0)
        assert np.array_equal(dup.decode(s1), nodup.decode(s2))
        # MSWP dense columns follow the deduplicated source list too.
        assert zoo.mswp(5, [4, 0, 4]).dense_form.init.shape == (5, 2)

    def test_k_requires_at_least_one(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            zoo.k_ssp(4, 0)
        for factory in (zoo.k_sdp, zoo.k_dsdp):
            with pytest.raises(ValueError, match="k must be >= 1"):
                factory(4, 0, sink=1)
        with pytest.raises(ValueError, match="out of range"):
            zoo.k_sdp(4, 1, sink=4)

    def test_forest_fire_requires_positive_radius(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="positive detection radius"):
                zoo.forest_fire(4, [0], dmax=bad)
        with pytest.raises(ValueError, match="out of range"):
            zoo.forest_fire(4, [4], dmax=1.0)

    def test_le_lists_requires_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            zoo.le_lists(4, np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError, match="rank must"):
            zoo.le_lists(4, np.arange(5))


class TestConnectivity:
    def test_connected_graph_all_true(self, small_graphs):
        g = small_graphs[0]
        inst = zoo.connectivity(g.n)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        assert inst.decode(states).all()

    def test_disconnected_components(self):
        g = Graph.from_edge_list(5, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        inst = zoo.connectivity(g.n)
        states, _ = run_to_fixpoint(g, inst.algo, inst.x0)
        out = inst.decode(states)
        assert out[0, 2] and out[3, 4]
        assert not out[0, 3] and not out[4, 1]

    def test_h_hop_reachability(self):
        g = gen.path_graph(5)
        inst = zoo.connectivity(5)
        out = inst.decode(run(g, inst.algo, inst.x0, 2))
        assert out[0, 2] and not out[0, 3]
