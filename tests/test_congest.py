"""Tests for the Congest-model algorithms (Section 8)."""

import numpy as np
import pytest

from repro.congest import RoundLedger, khan_le_lists, skeleton_frt
from repro.frt import compute_le_lists
from repro.graph import generators as gen
from repro.graph.shortest_paths import dijkstra_distances, shortest_path_diameter


class TestRoundLedger:
    def test_charge_accumulates(self):
        led = RoundLedger()
        led.charge(5, "a")
        led.charge(3, "a")
        led.charge(2, "b")
        assert led.rounds == 10
        assert led.breakdown() == {"a": 8, "b": 2}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RoundLedger().charge(-1, "x")

    def test_broadcast_pipelined(self):
        led = RoundLedger()
        led.broadcast(100, 7)
        assert led.rounds == 107

    def test_bfs(self):
        led = RoundLedger()
        led.bfs(5)
        assert led.rounds == 10

    def test_local_exchange_minimum_one(self):
        led = RoundLedger()
        led.local_exchange(0)
        assert led.rounds == 1


class TestKhan:
    def test_lists_match_reference(self, small_graphs):
        for g in small_graphs:
            rank = np.random.default_rng(0).permutation(g.n)
            lists, iters, _ = khan_le_lists(g, rank)
            want, _ = compute_le_lists(g, rank)
            assert lists.equals(want)

    def test_iterations_at_most_spd_plus_one(self):
        # The filtered fixpoint can arrive *before* SPD (entries that would
        # still change are filtered away); SPD + 1 is the hard ceiling
        # (one confirming iteration for termination detection).
        g = gen.path_graph(12)
        rank = np.random.default_rng(1).permutation(12)
        _, iters, _ = khan_le_lists(g, rank)
        assert 1 <= iters <= shortest_path_diameter(g) + 1

    def test_round_bound_spd_log_n(self):
        for seed in range(3):
            g = gen.cycle(40, rng=seed)
            rank = np.random.default_rng(seed).permutation(g.n)
            _, _, led = khan_le_lists(g, rank)
            spd = shortest_path_diameter(g)
            assert led.rounds <= 4 * (spd + 1) * np.log2(g.n)

    def test_rounds_scale_with_spd(self):
        rank32 = np.random.default_rng(0).permutation(32)
        _, _, led_cycle = khan_le_lists(gen.cycle(32, rng=0), rank32)
        _, _, led_star = khan_le_lists(gen.star(32, rng=0), rank32)
        assert led_star.rounds < led_cycle.rounds


class TestSkeletonFRT:
    def test_tree_dominates_g(self):
        g = gen.cycle(48, rng=0)
        res = skeleton_frt(g, eps=0.1, rng=1)
        DG = dijkstra_distances(g)
        MT = res.tree.distance_matrix()
        assert np.all(MT >= DG - 1e-9)

    def test_stretch_sane(self):
        g = gen.cycle(48, rng=0)
        DG = dijkstra_distances(g)
        ratios = []
        for seed in range(5):
            res = skeleton_frt(g, eps=0.05, rng=seed)
            MT = res.tree.distance_matrix()
            off = ~np.eye(g.n, dtype=bool)
            ratios.append((MT[off] / DG[off]).mean())
        # Average stretch O(alpha · log n) with a small constant.
        assert np.mean(ratios) <= 8 * res.meta["alpha"] * np.log2(g.n)

    def test_round_breakdown_phases(self):
        g = gen.cycle(48, rng=2)
        res = skeleton_frt(g, eps=0.1, rng=3)
        phases = res.ledger.breakdown()
        for key in (
            "bfs-setup",
            "partial-distance-estimation",
            "skeleton-list-broadcast",
            "local-le-iteration",
        ):
            assert key in phases

    def test_beats_khan_on_high_spd_low_diameter(self):
        # E8's crossover: the skeleton algorithm targets D(G) ≪ SPD(G)
        # (on plain cycles both algorithms pay Θ(n)).  cycle_with_hub has
        # D = 2 and SPD = n/2: Khan pays Θ(n log n) rounds, the skeleton
        # algorithm ~ sqrt(n)·polylog.
        n = 512
        g = gen.cycle_with_hub(n)
        rank = np.random.default_rng(5).permutation(g.n)
        _, _, khan_led = khan_le_lists(g, rank)
        # eps=0: the hub hop set is exact at this scale, so H_S is the
        # skeleton metric and its LE lists converge in one iteration.
        res = skeleton_frt(g, eps=0.0, c=0.5, rng=6)
        assert res.ledger.rounds < khan_led.rounds

    def test_khan_wins_on_low_spd(self):
        # On a star (SPD = 2) Khan needs ~2 iterations; skeleton overhead
        # dominates.
        n = 128
        g = gen.star(n, rng=7)
        rank = np.random.default_rng(8).permutation(n)
        _, _, khan_led = khan_le_lists(g, rank)
        res = skeleton_frt(g, eps=0.1, rng=9)
        assert khan_led.rounds < res.ledger.rounds

    def test_local_phase_within_ell_whp(self):
        g = gen.cycle(64, rng=10)
        res = skeleton_frt(g, eps=0.1, rng=11)
        assert res.meta["local_iterations_within_ell"]

    def test_skeleton_ranks_come_first(self):
        g = gen.cycle(48, rng=12)
        res = skeleton_frt(g, eps=0.1, rng=13)
        k = res.meta["skeleton_size"]
        # the k smallest ranks all belong to skeleton vertices
        skel_ranks = np.sort(res.rank)[:k]
        assert np.array_equal(skel_ranks, np.arange(k))

    def test_disconnected_rejected(self):
        from repro.graph.core import Graph

        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            skeleton_frt(g)


class TestSpannerFRT:
    """Section 8.2 — the spanner-based (Ghaffari-Lenzen) construction."""

    def test_tree_dominates_g(self):
        from repro.congest import spanner_frt

        g = gen.cycle(48, rng=20)
        res = spanner_frt(g, k=2, rng=21)
        DG = dijkstra_distances(g)
        MT = res.tree.distance_matrix()
        assert np.all(MT >= DG - 1e-9)

    def test_round_breakdown(self):
        from repro.congest import spanner_frt

        g = gen.cycle_with_hub(128)
        res = spanner_frt(g, k=2, c=0.5, rng=22)
        phases = res.ledger.breakdown()
        for key in ("spanner-broadcast", "local-le-iteration", "bfs-setup"):
            assert key in phases
        assert res.meta["spanner_k"] == 2
        assert res.meta["spanner_edges"] >= res.meta["skeleton_size"] - 1

    def test_stretch_scales_with_k(self):
        from repro.congest import spanner_frt

        g = gen.cycle(48, rng=23)
        DG = dijkstra_distances(g)
        off = ~np.eye(g.n, dtype=bool)

        def mean_stretch(k, seeds):
            vals = []
            for s in seeds:
                res = spanner_frt(g, k=k, rng=s)
                vals.append((res.tree.distance_matrix()[off] / DG[off]).mean())
            return np.mean(vals)

        s2 = mean_stretch(2, range(4))
        # O(k log n): sane envelope at k=2
        assert s2 <= 10 * 3 * np.log2(g.n)

    def test_beats_khan_on_high_spd_low_diameter(self):
        # k=3 keeps the spanner broadcast small enough at this scale
        # (k=2's n^eps-style overhead is exactly what Section 8.3 fixes).
        from repro.congest import spanner_frt

        n = 512
        g = gen.cycle_with_hub(n)
        rank = np.random.default_rng(24).permutation(g.n)
        _, _, khan_led = khan_le_lists(g, rank)
        res = spanner_frt(g, k=3, c=0.5, rng=25)
        assert res.ledger.rounds < khan_led.rounds

    def test_section_83_improves_on_section_82(self):
        # The paper's motivation for Section 8.3: the hop-set/simulated-
        # graph approach removes the spanner-broadcast overhead.
        from repro.congest import spanner_frt

        g = gen.cycle_with_hub(512)
        sp = spanner_frt(g, k=2, c=0.5, rng=26)
        sk = skeleton_frt(g, eps=0.0, c=0.5, rng=27)
        assert sk.ledger.rounds < sp.ledger.rounds

    def test_k_validation(self):
        from repro.congest import spanner_frt

        with pytest.raises(ValueError):
            spanner_frt(gen.cycle(12, rng=0), k=0)

    def test_disconnected_rejected(self):
        from repro.congest import spanner_frt
        from repro.graph.core import Graph

        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            spanner_frt(g)
