"""The CI smoke-manifest convention and the bench-trend merger.

``benchmarks/ci_smoke.json`` drives the CI bench-smoke matrix (one job per
entry: bench file -> test ids -> tiny-size ``-k`` filter -> artifact
name); these tests keep the manifest honest against the benchmark sources
so a renamed test or file fails here, not silently in CI.
``benchmarks/merge_trend.py`` (the final CI job) folds the uploaded
``bench-*.json`` artifacts into one ``bench-trend.json`` + summary table.
"""

import ast
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
MANIFEST = REPO / "benchmarks" / "ci_smoke.json"

sys.path.insert(0, str(REPO / "benchmarks"))
import merge_trend  # noqa: E402


@pytest.fixture(scope="module")
def entries():
    return json.loads(MANIFEST.read_text())["entries"]


class TestSmokeManifest:
    def test_names_and_artifacts_unique(self, entries):
        names = [e["name"] for e in entries]
        artifacts = [e["artifact"] for e in entries]
        assert len(set(names)) == len(names)
        assert len(set(artifacts)) == len(artifacts)

    def test_entry_shape(self, entries):
        for e in entries:
            assert set(e) == {"name", "file", "tests", "filter", "artifact"}
            assert isinstance(e["tests"], list)
            assert isinstance(e["filter"], str)
            # The trend job downloads artifacts by the bench-* pattern.
            assert e["artifact"].startswith("bench-"), e["name"]

    def test_bench_files_exist(self, entries):
        for e in entries:
            path = REPO / e["file"]
            assert path.is_file(), f"{e['name']}: missing {e['file']}"

    def test_listed_tests_exist_in_source(self, entries):
        for e in entries:
            tree = ast.parse((REPO / e["file"]).read_text())
            defined = {
                node.name
                for node in ast.walk(tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for test in e["tests"]:
                assert test in defined, f"{e['name']}: {test} not in {e['file']}"

    def test_e14_is_wired_in(self, entries):
        # Acceptance criterion of the forest-backed app PR: the batched
        # apps benchmark runs in CI smoke and lands in the merged trend.
        e14 = [e for e in entries if e["name"] == "e14"]
        assert len(e14) == 1
        assert e14[0]["file"] == "benchmarks/bench_e14_batched_apps.py"
        assert "test_e14_forest_kmedian_dp" in e14[0]["tests"]

    def test_smoke_selectors_collect(self, entries):
        """Every entry's selector set + filter collects >= 1 test."""
        for e in entries:
            select = (
                [f"{e['file']}::{t}" for t in e["tests"]]
                if e["tests"]
                else [e["file"]]
            )
            cmd = [sys.executable, "-m", "pytest", "-q", "--collect-only", *select]
            if e["filter"]:
                cmd += ["-k", e["filter"]]
            proc = subprocess.run(
                cmd, cwd=REPO, capture_output=True, text=True, timeout=120
            )
            assert proc.returncode == 0, f"{e['name']}: {proc.stdout}{proc.stderr}"
            assert "no tests ran" not in proc.stdout, e["name"]


def _fake_artifact(path, name, mean, extra):
    path.write_text(
        json.dumps(
            {
                "datetime": "2026-07-26T00:00:00",
                "benchmarks": [
                    {
                        "name": name,
                        "group": None,
                        "stats": {"mean": mean, "stddev": 0.0, "rounds": 1},
                        "extra_info": extra,
                    }
                ],
            }
        )
    )


class TestMergeTrend:
    def test_merge_and_summary(self, tmp_path):
        _fake_artifact(tmp_path / "bench-e13.json", "t_a[128-4]", 0.5, {"speedup": 2.0})
        _fake_artifact(tmp_path / "bench-e14.json", "t_b[128-4]", 0.1, {"n": 128})
        trend = merge_trend.merge_files(sorted(tmp_path.glob("bench-*.json")))
        assert trend["schema"] == merge_trend.SCHEMA
        assert [s["file"] for s in trend["sources"]] == [
            "bench-e13.json",
            "bench-e14.json",
        ]
        assert trend["sources"][0]["benchmarks"][0]["mean_s"] == 0.5
        summary = merge_trend.render_summary(trend)
        assert "t_a[128-4]" in summary and "speedup=2" in summary
        assert summary.count("|") >= 4 * 2  # a table with both rows

    def test_main_writes_out_and_summary(self, tmp_path):
        _fake_artifact(tmp_path / "bench-e7.json", "t_c", 0.2, {})
        out = tmp_path / "bench-trend.json"
        summary = tmp_path / "summary.md"
        rc = merge_trend.main(
            [str(tmp_path), "--out", str(out), "--summary", str(summary)]
        )
        assert rc == 0
        trend = json.loads(out.read_text())
        assert len(trend["sources"]) == 1
        assert "t_c" in summary.read_text()

    def test_main_fails_without_artifacts(self, tmp_path):
        assert merge_trend.main([str(tmp_path)]) == 1

    def test_unreadable_artifact_skipped(self, tmp_path):
        _fake_artifact(tmp_path / "bench-ok.json", "t_d", 0.3, {})
        (tmp_path / "bench-broken.json").write_text("{not json")
        trend = merge_trend.merge_files(sorted(tmp_path.glob("bench-*.json")))
        assert [s["file"] for s in trend["sources"]] == ["bench-ok.json"]
