"""Dense-vs-reference engine parity for every zoo family.

The acceptance bar of the problem-centric engine API: for every
``repro.mbf.zoo`` instance, the vectorized engine must reproduce the
reference engine's *decoded output* and *iteration count* exactly — at
the fixpoint and under h-capped runs — on random weighted graphs.
"""

import math

import numpy as np
import pytest

from repro.api import (
    FAMILIES,
    MBFProblem,
    Pipeline,
    PipelineConfig,
    SolveResult,
    engines_for,
    generators as gen,
    get_engine,
    problems,
    resolve_engine,
    solve,
)
from repro.graph.core import Graph
from repro.mbf.dense import FlatStates
from repro.mbf.problem import ScalarForm, solve_dense, solve_reference
from repro.mbf.scalar import run_scalar
from repro.pram.cost import CostLedger

INF = math.inf


def _random_graphs():
    """Random weighted graphs of assorted densities (one disconnected)."""
    gs = [
        gen.random_graph(14, 25, rng=100),
        gen.random_graph(20, 60, rng=101),
        gen.cycle(11, wmin=0.5, wmax=3.0, rng=102),
        gen.weighted_tree(16, rng=103),
    ]
    # A disconnected instance (two components) — families that support it
    # must agree there too (connectivity explicitly, Section 3.4).
    r = np.random.default_rng(104)
    edges = [(u, v, float(r.uniform(0.5, 2.0))) for u, v in
             [(0, 1), (1, 2), (2, 3), (0, 3), (4, 5), (5, 6), (4, 6)]]
    gs.append(Graph.from_edge_list(7, edges))
    return gs


GRAPHS = _random_graphs()


def _instances(n: int, rng: np.random.Generator) -> dict:
    srcs = sorted(int(s) for s in rng.choice(n, size=3, replace=False))
    return {
        "sssp": problems.sssp(n, int(rng.integers(n))),
        "mssp": problems.mssp(n, srcs),
        "forest_fire": problems.forest_fire(n, srcs[:2], dmax=2.5),
        "connectivity": problems.connectivity(n),
        "sswp": problems.sswp(n, int(rng.integers(n))),
        "mswp": problems.mswp(n, srcs),
        "apwp": problems.apwp(n),
        "apsp": problems.apsp(n),
        "source_detection": problems.source_detection(n, srcs, k=2, dmax=3.5),
        "k_ssp": problems.k_ssp(n, 3),
        "le_lists": problems.le_lists(n, rng.permutation(n)),
    }


DENSE_FAMILY_NAMES = sorted(_instances(8, np.random.default_rng(0)))


def _same(a, b) -> bool:
    if isinstance(a, FlatStates):
        return a.equals(b)
    return np.array_equal(np.asarray(a), np.asarray(b))


class TestDenseReferenceParity:
    @pytest.mark.parametrize("name", DENSE_FAMILY_NAMES)
    def test_fixpoint_outputs_and_iterations(self, name):
        for gi, g in enumerate(GRAPHS):
            inst = _instances(g.n, np.random.default_rng(200 + gi))[name]
            ref, it_ref = solve(g, inst, engine="reference")
            dense, it_dense = solve(g, inst, engine="dense")
            assert _same(dense, ref), (name, gi)
            assert it_dense == it_ref, (name, gi)

    @pytest.mark.parametrize("name", DENSE_FAMILY_NAMES)
    @pytest.mark.parametrize("h", [0, 1, 3])
    def test_h_capped_runs(self, name, h):
        g = GRAPHS[1]
        inst = _instances(g.n, np.random.default_rng(300))[name]
        ref, it_ref = solve(g, inst, engine="reference", h=h)
        dense, it_dense = solve(g, inst, engine="dense", h=h)
        assert _same(dense, ref), (name, h)
        assert it_dense == it_ref == h

    def test_all_paths_family_reference_only(self):
        g = GRAPHS[0]
        inst = problems.k_sdp(g.n, 2, sink=0)
        assert engines_for("all-paths") == ("reference",)
        # auto falls back to the reference engine...
        assert resolve_engine(inst).name == "reference"
        out, _ = solve(g, inst)
        ref, _ = solve(g, inst, engine="reference")
        assert out == ref
        # ...and pinning a dense engine is a capability error.
        with pytest.raises(ValueError, match="all-paths"):
            solve(g, inst, engine="dense")

    def test_problem_without_dense_form_autoroutes_to_reference(self):
        inst = problems.sssp(5, 0)
        stripped = MBFProblem(inst.algo, inst.x0, inst.decode, family=inst.family)
        assert resolve_engine(stripped).name == "reference"
        g = gen.path_graph(5)
        out, _ = solve(g, stripped)
        assert np.array_equal(out, np.array([0.0, 1.0, 2.0, 3.0, 4.0]))
        with pytest.raises(ValueError, match="dense form"):
            solve_dense(g, stripped)

    def test_graph_size_mismatch_rejected(self):
        inst = problems.sssp(5, 0)
        g = gen.path_graph(6)
        for fn in (solve_reference, solve_dense):
            with pytest.raises(ValueError, match="n=5"):
                fn(g, inst)


class TestScalarKernels:
    def test_ledger_charges_scale_with_columns(self):
        g = GRAPHS[1]
        l1, l3 = CostLedger(), CostLedger()
        solve_dense(g, problems.sssp(g.n, 0), ledger=l1)
        solve_dense(g, problems.mssp(g.n, [0, 1, 2]), ledger=l3)
        assert l1.work > 0 and l3.work > l1.work

    def test_max_iterations_cap(self):
        g = gen.path_graph(8)  # SPD = 7: fixpoint at 7, detected at 8
        inst = problems.sssp(8, 0)
        _, iters = solve_dense(g, inst, max_iterations=8)
        assert iters == 7
        with pytest.raises(RuntimeError, match="the cap, not the filter"):
            solve_dense(g, inst, max_iterations=7)

    def test_invalid_parameters_rejected(self):
        g = gen.path_graph(4)
        with pytest.raises(ValueError, match="semiring"):
            run_scalar(g, np.zeros((4, 1)), semiring="nope")
        with pytest.raises(ValueError, match="shape"):
            run_scalar(g, np.zeros((3, 1)))
        with pytest.raises(ValueError, match="max_iterations"):
            run_scalar(g, np.zeros((4, 1)), max_iterations=0)
        with pytest.raises(ValueError, match="ScalarForm semiring"):
            ScalarForm("boolean", np.zeros((4, 1)), decode=lambda X: X)
        # The dmax range filter only makes sense under min-plus: mapping
        # over-cap widths to inf would promote them to the max-min top.
        with pytest.raises(ValueError, match="min-plus"):
            run_scalar(g, np.zeros((4, 1)), semiring="max-min", dmax=0.5)
        with pytest.raises(ValueError, match="min-plus"):
            ScalarForm("max-min", np.zeros((4, 1)), decode=lambda X: X, dmax=0.5)
        # unit_weights (hop counting) is likewise a min-plus convention.
        with pytest.raises(ValueError, match="min-plus"):
            run_scalar(g, np.zeros((4, 1)), semiring="max-min", unit_weights=True)
        with pytest.raises(ValueError, match="min-plus"):
            ScalarForm("max-min", np.zeros((4, 1)), decode=lambda X: X, unit_weights=True)

    def test_negative_h_rejected_on_every_engine(self):
        g = gen.path_graph(4)
        for inst in (problems.sssp(4, 0), problems.apsp(4)):
            for engine in ("dense", "reference"):
                with pytest.raises(ValueError, match="non-negative"):
                    solve(g, inst, engine=engine, h=-1)

    def test_edgeless_graph(self):
        g = Graph(3, np.empty((0, 2), dtype=np.int64), np.empty(0))
        out, iters = solve_dense(g, problems.sssp(3, 1))
        assert iters == 0
        assert np.array_equal(out, np.array([INF, 0.0, INF]))
        conn, _ = solve_dense(g, problems.connectivity(3))
        assert np.array_equal(conn, np.eye(3, dtype=bool))


class TestPipelineSolve:
    def test_solve_result_and_accounting(self):
        g = gen.random_graph(16, 40, rng=50)
        pipe = Pipeline(g, PipelineConfig(seed=0))
        res = pipe.solve(problems.sswp(g.n, 2))
        assert isinstance(res, SolveResult)
        assert res.engine == "dense" and res.family == "max-min"
        assert res.problem == "SSWP"
        ref = pipe.solve(problems.sswp(g.n, 2), engine="reference")
        assert np.array_equal(res.value, ref.value)
        assert res.iterations == ref.iterations
        assert pipe.stats["solves"] == 2
        assert pipe.timings["solves"] > 0.0
        # solve() builds no pipeline artifacts — it runs on G directly.
        assert pipe.stats["hopset_builds"] == 0
        assert pipe.stats["oracle_builds"] == 0

    def test_solve_h_and_ledger(self):
        g = gen.random_graph(16, 40, rng=51)
        pipe = Pipeline(g, PipelineConfig(seed=0))
        ledger = CostLedger()
        res = pipe.solve(problems.apsp(g.n), h=2, ledger=ledger)
        assert res.iterations == 2
        assert ledger.work > 0

    def test_le_lists_problem_matches_backend_driver(self):
        from repro.api import get_backend

        g = gen.random_graph(14, 30, rng=52)
        rank = np.random.default_rng(53).permutation(g.n)
        via_problem, it_p = solve(g, problems.le_lists(g.n, rank))
        via_backend, it_b = get_backend("dense").le_lists(g, rank)
        assert via_problem.equals(via_backend)
        assert it_p == it_b

    def test_families_are_declared(self):
        insts = _instances(8, np.random.default_rng(1))
        assert {i.family for i in insts.values()} | {"all-paths"} == set(FAMILIES)
        for eng_name in ("dense", "reference"):
            eng = get_engine(eng_name)
            for inst in insts.values():
                assert eng.supports(inst), (eng_name, inst.name)
