"""Tests for the work/depth cost ledger."""

import pytest

from repro.pram import NULL_LEDGER, CostLedger


class TestSerial:
    def test_work_and_depth_add(self):
        c = CostLedger()
        c.serial(10)
        c.serial(5, 2)
        assert c.work == 15
        assert c.depth == 12

    def test_depth_defaults_to_work(self):
        c = CostLedger()
        c.serial(7)
        assert c.depth == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().serial(-1)


class TestParallelFor:
    def test_work_scales_depth_does_not(self):
        c = CostLedger()
        c.parallel_for(100, work_per_item=2, depth_per_item=3)
        assert c.work == 200
        assert c.depth == 3

    def test_zero_items_free(self):
        c = CostLedger()
        c.parallel_for(0)
        assert (c.work, c.depth) == (0, 0)

    def test_sequence_of_parallel_phases(self):
        c = CostLedger()
        for _ in range(4):
            c.parallel_for(10, 1, 2)
        assert c.work == 40
        assert c.depth == 8


class TestReductionAndSort:
    def test_reduction_log_depth(self):
        c = CostLedger()
        c.reduction(1024)
        assert c.work == 1024
        assert c.depth == 10

    def test_reduction_trivial(self):
        c = CostLedger()
        c.reduction(1)
        assert c.depth == 0

    def test_sort_nlogn_work(self):
        c = CostLedger()
        c.sort(8)
        assert c.work == 24  # 8 * log2(8)
        assert c.depth == 3

    def test_sort_single_item(self):
        c = CostLedger()
        c.sort(1)
        assert c.work == 1

    def test_sort_non_power_of_two(self):
        c = CostLedger()
        c.sort(5)  # ceil(log2 5) = 3
        assert c.work == 15
        assert c.depth == 3


class TestForkJoin:
    def test_join_max_depth_sum_work(self):
        parent = CostLedger()
        a, b = parent.fork(), parent.fork()
        a.serial(10, 10)
        b.serial(3, 3)
        parent.join(a, b)
        assert parent.work == 13
        assert parent.depth == 10

    def test_join_empty_noop(self):
        parent = CostLedger()
        parent.join()
        assert parent.snapshot() == (0, 0)

    def test_merge_sequential(self):
        a, b = CostLedger(), CostLedger()
        a.serial(1, 1)
        b.serial(2, 2)
        a.merge_sequential(b)
        assert a.snapshot() == (3, 3)


class TestTrace:
    def test_phases_recorded(self):
        c = CostLedger(trace=True)
        c.serial(5, label="setup")
        c.parallel_for(3, label="scan")
        assert [p.label for p in c.phases] == ["setup", "scan"]
        assert c.phases[0].work == 5

    def test_trace_off_by_default(self):
        c = CostLedger()
        c.serial(5)
        assert c.phases == []

    def test_join_propagates_child_phases(self):
        c = CostLedger(trace=True)
        child = c.fork()
        child.serial(2, label="inner")
        c.join(child)
        labels = [p.label for p in c.phases]
        assert "inner" in labels and "join" in labels


class TestNullLedger:
    def test_ignores_everything(self):
        NULL_LEDGER.serial(100)
        NULL_LEDGER.parallel_for(100)
        NULL_LEDGER.sort(100)
        NULL_LEDGER.reduction(100)
        NULL_LEDGER.join(CostLedger())
        assert NULL_LEDGER.snapshot() == (0, 0)

    def test_fork_returns_null(self):
        assert NULL_LEDGER.fork() is NULL_LEDGER
