"""Tests for the Graph data structure."""

import numpy as np
import pytest

from repro.graph.core import Graph
from tests.conftest import triangle_graph


class TestConstruction:
    def test_basic(self):
        g = triangle_graph()
        assert g.n == 3
        assert g.m == 3

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(2, [(0, 0)], [1.0])

    def test_rejects_parallel_edges(self):
        with pytest.raises(ValueError, match="parallel"):
            Graph(3, [(0, 1), (1, 0)], [1.0, 2.0])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weights"):
            Graph(2, [(0, 1)], [0.0])
        with pytest.raises(ValueError, match="weights"):
            Graph(2, [(0, 1)], [-1.0])

    def test_rejects_infinite_weight(self):
        with pytest.raises(ValueError, match="weights"):
            Graph(2, [(0, 1)], [np.inf])

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [(0, 5)], [1.0])

    def test_rejects_count_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            Graph(3, [(0, 1)], [1.0, 2.0])

    def test_rejects_empty_vertex_set(self):
        with pytest.raises(ValueError):
            Graph(0, np.empty((0, 2), dtype=np.int64), [])

    def test_edgeless_graph_allowed(self):
        g = Graph(3, np.empty((0, 2), dtype=np.int64), [])
        assert g.m == 0
        assert not g.is_connected()

    def test_from_edge_list(self):
        g = Graph.from_edge_list(4, [(0, 1, 2.0), (2, 3, 1.5)])
        assert g.m == 2
        assert g.weights.tolist() == [2.0, 1.5]

    def test_from_edge_list_empty(self):
        g = Graph.from_edge_list(2, [])
        assert g.m == 0


class TestAccessors:
    def test_adjacency_symmetric(self):
        g = triangle_graph()
        A = g.adjacency().toarray()
        assert np.array_equal(A, A.T)
        assert A[0, 1] == 1.0 and A[1, 2] == 2.0 and A[0, 2] == 4.0

    def test_neighbors(self):
        g = triangle_graph()
        ids, w = g.neighbors(1)
        assert sorted(ids.tolist()) == [0, 2]
        assert sorted(w.tolist()) == [1.0, 2.0]

    def test_degrees(self):
        g = Graph.from_edge_list(4, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)])
        assert g.degrees().tolist() == [3, 1, 1, 1]

    def test_directed_edges_both_orientations(self):
        g = triangle_graph()
        src, dst, w = g.directed_edges()
        assert src.size == 2 * g.m
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_weight_bounds(self):
        g = triangle_graph()
        assert g.weight_bounds() == (1.0, 4.0)

    def test_is_connected(self):
        assert triangle_graph().is_connected()
        g = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert not g.is_connected()

    def test_single_vertex_connected(self):
        g = Graph(1, np.empty((0, 2), dtype=np.int64), [])
        assert g.is_connected()

    def test_has_edge(self):
        g = triangle_graph()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        g2 = Graph.from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert not g2.has_edge(0, 3)


class TestNetworkxRoundTrip:
    def test_round_trip(self):
        g = triangle_graph()
        g2 = Graph.from_networkx(g.to_networkx())
        assert g == g2

    def test_default_weight(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(range(2))
        nxg.add_edge(0, 1)
        g = Graph.from_networkx(nxg)
        assert g.weights[0] == 1.0


class TestWithExtraEdges:
    def test_adds_new_edges(self):
        g = Graph.from_edge_list(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        g2 = g.with_extra_edges(np.array([[0, 3]]), np.array([2.5]))
        assert g2.m == 4
        assert g2.has_edge(0, 3)

    def test_duplicate_keeps_min_weight(self):
        g = Graph.from_edge_list(3, [(0, 1, 5.0), (1, 2, 1.0)])
        g2 = g.with_extra_edges(np.array([[1, 0]]), np.array([2.0]))
        assert g2.m == 2
        A = g2.adjacency()
        assert A[0, 1] == 2.0

    def test_duplicate_does_not_increase_weight(self):
        g = Graph.from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0)])
        g2 = g.with_extra_edges(np.array([[0, 1]]), np.array([10.0]))
        assert g2.adjacency()[0, 1] == 1.0

    def test_empty_extra(self):
        g = triangle_graph()
        g2 = g.with_extra_edges(np.empty((0, 2), dtype=np.int64), np.empty(0))
        assert g == g2

    def test_rejects_self_loop_extra(self):
        g = triangle_graph()
        with pytest.raises(ValueError):
            g.with_extra_edges(np.array([[1, 1]]), np.array([1.0]))

    def test_original_untouched(self):
        g = triangle_graph()
        g.with_extra_edges(np.array([[0, 1]]), np.array([0.1]))
        assert g.adjacency()[0, 1] == 1.0

    def test_rejects_invalid_extra_weights(self):
        """Regression: the result is built with ``validate=False``, so a
        buggy hop set could previously inject zero/negative/inf/NaN
        weights silently; extra weights are now validated up front."""
        g = triangle_graph()
        for bad in (0.0, -1.0, np.inf, -np.inf, np.nan):
            with pytest.raises(ValueError, match="finite and > 0"):
                g.with_extra_edges(np.array([[0, 1]]), np.array([bad]))

    def test_rejects_out_of_range_extra_endpoint(self):
        g = triangle_graph()
        with pytest.raises(ValueError, match="out of range"):
            g.with_extra_edges(np.array([[0, 3]]), np.array([1.0]))
        with pytest.raises(ValueError, match="out of range"):
            g.with_extra_edges(np.array([[-1, 1]]), np.array([1.0]))

    def test_rejects_extra_count_mismatch(self):
        g = triangle_graph()
        with pytest.raises(ValueError, match="mismatch"):
            g.with_extra_edges(np.array([[0, 1]]), np.array([1.0, 2.0]))


class TestEquality:
    def test_equal_regardless_of_edge_order(self):
        a = Graph.from_edge_list(3, [(0, 1, 1.0), (1, 2, 2.0)])
        b = Graph.from_edge_list(3, [(2, 1, 2.0), (1, 0, 1.0)])
        assert a == b

    def test_unequal_weights(self):
        a = Graph.from_edge_list(3, [(0, 1, 1.0)])
        b = Graph.from_edge_list(3, [(0, 1, 2.0)])
        assert a != b

    def test_non_graph_comparison(self):
        assert triangle_graph() != 42
